//! Scheme repair under topology churn.
//!
//! A built [`RoutingScheme`] is a pure function of its graph: any delta
//! invalidates some of its entries. Rebuilding the whole scheme per delta
//! costs `O(n²)` table writes even when one link flapped; this module
//! pairs a [`DeltaOracle`] (exact in-place distance repair,
//! [`ort_graphs::delta`]) with **dirty-region scheme patching**:
//!
//! * For the full-table scheme, the oracle's dirty source set `D` names
//!   exactly the routing-table regions that can have moved — the two
//!   endpoint rows plus, at every other node, the entries toward
//!   destinations in `D` ([`FullTableScheme`] patch path). Everything
//!   else is left byte-untouched.
//! * For every other scheme (or when the oracle itself fell back to a
//!   full recompute), the wrapper rebuilds the whole scheme from the
//!   repaired oracle — the *whole-scheme rebuild fallback*. Because the
//!   repaired oracle is exactly the fresh APSP function, the rebuilt
//!   scheme is byte-identical to a from-scratch build.
//!
//! Membership churn (join/leave) always takes the rebuild path: node
//! count and labels shift, so no region of the old table survives.
//!
//! Every mutating call re-checks the bit accounting
//! ([`BitBreakdown`] reconciliation) before returning, so a bad splice
//! can never silently corrupt the space bound the paper charges.
//!
//! Deltas that would disconnect the network are **refused** (the routing
//! problem requires connectivity): the call returns
//! [`SchemeError::Disconnected`], the state is untouched, and the refusal
//! is counted in [`SchemeRepairStats::refusals`].

use ort_graphs::delta::DeltaOracle;
use ort_graphs::oracle::Distances;
use ort_graphs::paths;
use ort_graphs::{Graph, GraphError, NodeId};

use crate::accounting::BitBreakdown;
use crate::scheme::{RoutingScheme, SchemeError};
use crate::schemes::full_table::FullTableScheme;

/// Rebuilds a scheme from a graph and an exact distance oracle — the
/// whole-scheme fallback used by [`RepairableScheme::with_builder`].
pub type SchemeBuilder =
    Box<dyn Fn(&Graph, &dyn Distances) -> Result<Box<dyn RoutingScheme>, SchemeError> + Send + Sync>;

/// What one mutating call did, across both layers (oracle and scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchReport {
    /// Dirty sources reported by the oracle repair(s).
    pub dirty_nodes: usize,
    /// Distance-matrix rows recomputed by traversal.
    pub rows_recomputed: usize,
    /// Full-matrix oracle fallbacks (0 or, for join/leave, up to the
    /// number of links touched).
    pub oracle_rebuilds: usize,
    /// Routing entries rewritten in place (0 when the scheme was rebuilt).
    pub entries_patched: usize,
    /// Whether the scheme took the whole-rebuild fallback.
    pub scheme_rebuilt: bool,
}

/// Lifetime totals across every mutating call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchemeRepairStats {
    /// Edge deltas absorbed by in-place entry patching.
    pub patches: u64,
    /// Whole-scheme rebuilds (non-full-table schemes, oracle fallbacks,
    /// and every join/leave).
    pub rebuilds: u64,
    /// Total routing entries rewritten in place.
    pub entries_patched: u64,
    /// Deltas refused because they would disconnect the network.
    pub refusals: u64,
}

enum Inner {
    /// Entry-level patch fast path.
    FullTable(FullTableScheme),
    /// Any scheme: every delta rebuilds via the stored builder.
    Boxed { scheme: Box<dyn RoutingScheme>, builder: SchemeBuilder },
}

/// A routing scheme that survives topology churn: an owned graph, a
/// [`DeltaOracle`] repaired per delta, and a scheme patched (full table)
/// or rebuilt (everything else) from it.
///
/// The churn vocabulary mirrors `ort-simnet`'s `ChurnEvent` one-to-one —
/// [`RepairableScheme::add_link`], [`RepairableScheme::remove_link`],
/// [`RepairableScheme::join`], [`RepairableScheme::leave`] — so a sweep
/// can map events onto calls without coupling the crates.
///
/// # Example
///
/// ```
/// use ort_graphs::generators;
/// use ort_routing::repair::RepairableScheme;
/// use ort_routing::verify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::connected_gnp(32, 0.2, 7);
/// let mut scheme = RepairableScheme::full_table(g)?;
/// let report = scheme.add_link(0, 31)?;
/// assert!(report.dirty_nodes <= 32);
/// let check = verify::verify_scheme(scheme.graph(), scheme.scheme())?;
/// assert!(check.is_shortest_path());
/// # Ok(())
/// # }
/// ```
pub struct RepairableScheme {
    oracle: DeltaOracle,
    inner: Inner,
    stats: SchemeRepairStats,
}

impl RepairableScheme {
    /// Builds a repairable full-table scheme (the only scheme with an
    /// entry-level patch fast path) over `g` in the default model.
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::Disconnected`] if `g` is disconnected.
    pub fn full_table(g: Graph) -> Result<Self, SchemeError> {
        let oracle = DeltaOracle::new(g);
        let scheme = FullTableScheme::build_with_dists(oracle.graph(), &oracle)?;
        Ok(RepairableScheme {
            oracle,
            inner: Inner::FullTable(scheme),
            stats: SchemeRepairStats::default(),
        })
    }

    /// Wraps an arbitrary scheme constructor: every delta repairs the
    /// oracle incrementally, then rebuilds the scheme via `builder` —
    /// cheaper than a cold build (the APSP is repaired, not recomputed),
    /// but with no entry-level patching.
    ///
    /// # Errors
    ///
    /// Whatever `builder` returns for the initial graph.
    pub fn with_builder(g: Graph, builder: SchemeBuilder) -> Result<Self, SchemeError> {
        let oracle = DeltaOracle::new(g);
        let scheme = builder(oracle.graph(), &oracle)?;
        Ok(RepairableScheme {
            oracle,
            inner: Inner::Boxed { scheme, builder },
            stats: SchemeRepairStats::default(),
        })
    }

    /// The current topology.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.oracle.graph()
    }

    /// The repaired distance oracle (always exact for the current graph).
    #[must_use]
    pub fn oracle(&self) -> &DeltaOracle {
        &self.oracle
    }

    /// The current scheme — always valid for [`RepairableScheme::graph`].
    #[must_use]
    pub fn scheme(&self) -> &dyn RoutingScheme {
        match &self.inner {
            Inner::FullTable(s) => s,
            Inner::Boxed { scheme, .. } => scheme.as_ref(),
        }
    }

    /// Number of nodes in the current topology.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph().node_count()
    }

    /// Lifetime repair totals.
    #[must_use]
    pub fn stats(&self) -> SchemeRepairStats {
        self.stats
    }

    /// Brings link `{u, v}` up and repairs oracle and scheme.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Graph`] for invalid pairs; state untouched on error.
    pub fn add_link(&mut self, u: NodeId, v: NodeId) -> Result<PatchReport, SchemeError> {
        let report = self.oracle.add_edge(u, v)?;
        self.absorb_edge_repair(u, v, &report)
    }

    /// Tears link `{u, v}` down and repairs oracle and scheme.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Graph`] for invalid pairs, or
    /// [`SchemeError::Disconnected`] (a counted refusal, state untouched)
    /// if the removal would split the network.
    pub fn remove_link(&mut self, u: NodeId, v: NodeId) -> Result<PatchReport, SchemeError> {
        let mut probe = self.oracle.graph().clone();
        probe.remove_edge(u, v)?;
        if !paths::is_connected(&probe) {
            self.stats.refusals += 1;
            return Err(SchemeError::Disconnected);
        }
        let report = self.oracle.remove_edge(u, v).expect("probe validated the pair");
        self.absorb_edge_repair(u, v, &report)
    }

    /// A node joins with links to `peers`: grows the oracle (node append
    /// plus one edge repair per peer) and rebuilds the scheme — labels and
    /// `n` shift, so membership churn always takes the rebuild fallback.
    /// Returns the new node's id alongside the report.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Disconnected`] (a counted refusal) for an empty peer
    /// list, [`SchemeError::Graph`] for out-of-range or duplicate peers;
    /// state untouched on error.
    pub fn join(&mut self, peers: &[NodeId]) -> Result<(NodeId, PatchReport), SchemeError> {
        if peers.is_empty() {
            self.stats.refusals += 1;
            return Err(SchemeError::Disconnected);
        }
        let n = self.node_count();
        for (i, &p) in peers.iter().enumerate() {
            if p >= n {
                return Err(SchemeError::Graph(GraphError::NodeOutOfRange { node: p, n }));
            }
            if peers[..i].contains(&p) {
                return Err(SchemeError::Precondition {
                    reason: format!("duplicate join peer {p}"),
                });
            }
        }
        let id = self.oracle.add_node();
        let mut agg = PatchReport {
            dirty_nodes: 0,
            rows_recomputed: 0,
            oracle_rebuilds: 0,
            entries_patched: 0,
            scheme_rebuilt: true,
        };
        for &p in peers {
            let r = self.oracle.add_edge(id, p).expect("peers validated");
            agg.dirty_nodes += r.dirty_nodes();
            agg.rows_recomputed += r.rows_recomputed;
            agg.oracle_rebuilds += usize::from(r.full_rebuild);
        }
        self.rebuild_scheme()?;
        self.assert_reconciled();
        Ok((id, agg))
    }

    /// Node `u` leaves: its links are torn down one by one (each an
    /// oracle repair), the node row is dropped, and the scheme is rebuilt
    /// on the shrunken topology. Ids above `u` shift down, mirroring
    /// [`Graph::remove_node`].
    ///
    /// # Errors
    ///
    /// [`SchemeError::Graph`] if `u` is out of range,
    /// [`SchemeError::Disconnected`] (a counted refusal, state untouched)
    /// if the survivors would be disconnected or `u` is the last node.
    pub fn leave(&mut self, u: NodeId) -> Result<PatchReport, SchemeError> {
        let n = self.node_count();
        if u >= n {
            return Err(SchemeError::Graph(GraphError::NodeOutOfRange { node: u, n }));
        }
        if n <= 1 {
            self.stats.refusals += 1;
            return Err(SchemeError::Disconnected);
        }
        let mut probe = self.oracle.graph().clone();
        for w in probe.neighbors(u).to_vec() {
            probe.remove_edge(u, w).expect("neighbour list is live");
        }
        probe.remove_node(u).expect("links were just torn down");
        if !paths::is_connected(&probe) {
            self.stats.refusals += 1;
            return Err(SchemeError::Disconnected);
        }
        let mut agg = PatchReport {
            dirty_nodes: 0,
            rows_recomputed: 0,
            oracle_rebuilds: 0,
            entries_patched: 0,
            scheme_rebuilt: true,
        };
        // Intermediate states may be disconnected (a leaving hub strands
        // its neighbours until it is fully gone); the oracle repairs
        // through that exactly, and the scheme is only rebuilt at the end
        // on the probe-validated survivor topology.
        for w in self.oracle.graph().neighbors(u).to_vec() {
            let r = self.oracle.remove_edge(u, w).expect("neighbour list is live");
            agg.dirty_nodes += r.dirty_nodes();
            agg.rows_recomputed += r.rows_recomputed;
            agg.oracle_rebuilds += usize::from(r.full_rebuild);
        }
        self.oracle.remove_node(u).expect("links were just torn down");
        self.rebuild_scheme()?;
        self.assert_reconciled();
        Ok(agg)
    }

    /// Patch (full table, exact dirty set available) or rebuild
    /// (everything else) after an edge delta the oracle already absorbed.
    fn absorb_edge_repair(
        &mut self,
        a: NodeId,
        b: NodeId,
        report: &ort_graphs::delta::RepairReport,
    ) -> Result<PatchReport, SchemeError> {
        let can_patch = matches!(self.inner, Inner::FullTable(_)) && !report.full_rebuild;
        let (entries_patched, scheme_rebuilt) = if can_patch {
            let Inner::FullTable(scheme) = &mut self.inner else { unreachable!() };
            let patched =
                scheme.patch_edge_delta(self.oracle.graph(), &self.oracle, [a, b], &report.dirty)?;
            ort_telemetry::counter!("repair.scheme_patches").incr();
            self.stats.patches += 1;
            self.stats.entries_patched += patched as u64;
            (patched, false)
        } else {
            // The oracle's width-widening fallback reports no dirty set,
            // and non-full-table schemes have no patchable entry layout:
            // rebuild from the repaired oracle.
            self.rebuild_scheme()?;
            (0, true)
        };
        self.assert_reconciled();
        Ok(PatchReport {
            dirty_nodes: report.dirty_nodes(),
            rows_recomputed: report.rows_recomputed,
            oracle_rebuilds: usize::from(report.full_rebuild),
            entries_patched,
            scheme_rebuilt,
        })
    }

    fn rebuild_scheme(&mut self) -> Result<(), SchemeError> {
        ort_telemetry::counter!("repair.scheme_rebuilds").incr();
        self.stats.rebuilds += 1;
        match &mut self.inner {
            Inner::FullTable(scheme) => {
                *scheme = FullTableScheme::build_with_dists(self.oracle.graph(), &self.oracle)?;
            }
            Inner::Boxed { scheme, builder } => {
                *scheme = builder(self.oracle.graph(), &self.oracle)?;
            }
        }
        Ok(())
    }

    /// The paper's accounting must survive every splice: `BitBreakdown`
    /// reconciles against `total_size_bits` exactly, or the repair is a
    /// correctness bug.
    fn assert_reconciled(&self) {
        let scheme = self.scheme();
        let b = BitBreakdown::of(scheme);
        assert_eq!(
            b.total(),
            scheme.total_size_bits(),
            "post-repair bit accounting must reconcile"
        );
    }
}

impl std::fmt::Debug for RepairableScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairableScheme")
            .field("n", &self.node_count())
            .field(
                "inner",
                &match self.inner {
                    Inner::FullTable(_) => "full-table (patchable)",
                    Inner::Boxed { .. } => "boxed (rebuild-only)",
                },
            )
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::theorem1::Theorem1Scheme;
    use crate::snapshot;
    use crate::verify::verify_scheme;
    use ort_graphs::generators;

    /// The repaired scheme must be byte-identical to a cold build on the
    /// current graph — the PR 7 guarantee (exact oracles build identical
    /// schemes) extended through repair.
    fn assert_bytes_match_fresh(r: &RepairableScheme, context: &str) {
        let fresh = FullTableScheme::build(r.graph()).unwrap();
        assert_eq!(
            snapshot::save(snapshot::SchemeKind::FullTable, r.scheme()).unwrap(),
            snapshot::save(snapshot::SchemeKind::FullTable, &fresh).unwrap(),
            "{context}"
        );
    }

    #[test]
    fn patched_full_table_matches_cold_build_bytes() {
        let g = generators::connected_gnp(40, 0.12, 11);
        let mut r = RepairableScheme::full_table(g).unwrap();
        let mut state = 0x5EEDu64;
        let mut patched = 0u64;
        for step in 0..30 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as usize % 40;
            let v = (state >> 33) as usize % 40;
            if u == v {
                continue;
            }
            let res = if r.graph().has_edge(u, v) {
                r.remove_link(u, v)
            } else {
                r.add_link(u, v)
            };
            match res {
                Ok(report) => {
                    patched += u64::from(!report.scheme_rebuilt);
                    assert_bytes_match_fresh(&r, &format!("step {step}"));
                }
                Err(SchemeError::Disconnected) => {} // refused bridge removal
                Err(e) => panic!("step {step}: {e}"),
            }
        }
        assert!(patched > 0, "sweep must exercise the patch fast path");
        assert_eq!(r.stats().patches, patched);
        let report = verify_scheme(r.graph(), r.scheme()).unwrap();
        assert!(report.is_shortest_path());
    }

    #[test]
    fn bridge_removal_is_refused_and_state_untouched() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut r = RepairableScheme::full_table(g).unwrap();
        let before = snapshot::save(snapshot::SchemeKind::FullTable, r.scheme()).unwrap();
        assert!(matches!(r.remove_link(1, 2), Err(SchemeError::Disconnected)));
        assert_eq!(r.stats().refusals, 1);
        assert_eq!(snapshot::save(snapshot::SchemeKind::FullTable, r.scheme()).unwrap(), before);
        assert_eq!(r.graph().edge_count(), 3);
        assert_bytes_match_fresh(&r, "after refusal");
    }

    #[test]
    fn join_and_leave_rebuild_and_stay_verified() {
        let g = generators::connected_gnp(16, 0.25, 3);
        let mut r = RepairableScheme::full_table(g).unwrap();
        let (id, report) = r.join(&[0, 5, 9]).unwrap();
        assert_eq!(id, 16);
        assert!(report.scheme_rebuilt);
        assert_eq!(r.node_count(), 17);
        assert_bytes_match_fresh(&r, "post join");
        let report = r.leave(id).unwrap();
        assert!(report.scheme_rebuilt);
        assert_eq!(r.node_count(), 16);
        assert_bytes_match_fresh(&r, "post leave");
        // Interior leave shifts ids; the rebuilt scheme must still verify.
        let hub = (0..r.node_count()).max_by_key(|&u| r.graph().degree(u)).unwrap();
        match r.leave(hub) {
            Ok(_) => assert_bytes_match_fresh(&r, "hub leave"),
            Err(SchemeError::Disconnected) => {} // hub was a cut vertex
            Err(e) => panic!("{e}"),
        }
        assert!(verify_scheme(r.graph(), r.scheme()).unwrap().is_shortest_path());
    }

    #[test]
    fn join_validates_peers_before_mutating() {
        let g = generators::cycle(6);
        let mut r = RepairableScheme::full_table(g).unwrap();
        assert!(matches!(r.join(&[]), Err(SchemeError::Disconnected)));
        assert!(matches!(r.join(&[0, 99]), Err(SchemeError::Graph(_))));
        assert!(matches!(r.join(&[0, 0]), Err(SchemeError::Precondition { .. })));
        assert_eq!(r.node_count(), 6, "failed joins must not grow the graph");
        assert_bytes_match_fresh(&r, "after rejected joins");
    }

    #[test]
    fn boxed_builder_rebuilds_any_scheme() {
        let g = generators::gnp_half(24, 9);
        let builder: SchemeBuilder = Box::new(|g, dists| {
            Theorem1Scheme::build_with_dists(g, dists).map(|s| Box::new(s) as Box<dyn RoutingScheme>)
        });
        let mut r = RepairableScheme::with_builder(g, builder).unwrap();
        // gnp_half may already have {0,1}: adding is idempotent either way.
        let report = r.add_link(0, 1).unwrap();
        assert!(report.scheme_rebuilt);
        let check = verify_scheme(r.graph(), r.scheme()).unwrap();
        assert!(check.is_shortest_path());
        assert!(r.stats().rebuilds >= 1);
    }

    #[test]
    fn width_widening_delta_falls_back_to_scheme_rebuild() {
        // A 300-cycle with the chord {0, 150} has ecc(0) = 75, so the
        // 2·ecc width bound is 150 (u8 cells); removing the chord leaves
        // the bare cycle with ecc(0) = 150, bound 300 — past u8. The
        // oracle falls back with no dirty set, and the scheme must
        // rebuild.
        let n = 300;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((0, n / 2));
        let g = Graph::from_edges(n, edges).unwrap();
        let mut r = RepairableScheme::full_table(g).unwrap();
        let report = r.remove_link(0, n / 2).unwrap();
        assert!(report.scheme_rebuilt, "oracle fallback must force a scheme rebuild");
        assert_eq!(report.oracle_rebuilds, 1);
        assert_bytes_match_fresh(&r, "width-widening removal");
    }
}
