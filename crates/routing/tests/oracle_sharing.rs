//! The DistanceOracle contract: one APSP computation serves scheme
//! construction *and* verification.
//!
//! Asserted via `ort_graphs::paths::apsp_compute_count`, a process-wide
//! counter — which is why this file holds exactly one test: any
//! concurrently running test that computes an APSP would perturb the
//! deltas. Integration-test files get their own process, so isolation is
//! guaranteed.

use ort_graphs::generators;
use ort_graphs::paths::{apsp_compute_count, Apsp};
use ort_routing::schemes::full_table::FullTableScheme;
use ort_routing::schemes::landmark::LandmarkScheme;
use ort_routing::verify::{verify_scheme, verify_scheme_with_oracle};

#[test]
fn construct_and_verify_share_one_apsp() {
    // Force multiple verifier threads even on single-core CI hosts, so the
    // parallel merge path is exercised. Safe: this process runs one test.
    std::env::set_var("ORT_THREADS", "3");
    let g = generators::gnp_half(40, 9);

    let before = apsp_compute_count();
    let oracle = Apsp::compute(&g).into_oracle();
    let scheme = FullTableScheme::build_with_oracle(&g, &oracle).unwrap();
    let report = verify_scheme_with_oracle(&g, &scheme, &oracle).unwrap();
    assert!(report.is_shortest_path());
    assert_eq!(
        apsp_compute_count() - before,
        1,
        "full_table build + verify must cost exactly one APSP computation"
    );

    // A second scheme against the same graph rides the same oracle for free.
    let before = apsp_compute_count();
    let lm = LandmarkScheme::build_with_oracle_and_landmark_count(&g, &oracle, 1, 6).unwrap();
    let lm_report = verify_scheme_with_oracle(&g, &lm, &oracle).unwrap();
    assert!(lm_report.all_delivered());
    assert_eq!(apsp_compute_count() - before, 0, "landmark reuses the existing oracle");

    // The legacy wrappers still work (recomputing once per call) and agree
    // with the oracle-shared pipeline result for result.
    let before = apsp_compute_count();
    let legacy_scheme = FullTableScheme::build(&g).unwrap();
    let legacy = verify_scheme(&g, &legacy_scheme).unwrap();
    assert_eq!(apsp_compute_count() - before, 2, "wrappers compute one APSP each");
    assert_eq!(legacy.delivered, report.delivered);
    assert_eq!(legacy.total_hops, report.total_hops);
    assert_eq!(legacy.stretches, report.stretches);

    // Parallel and serial verification produce identical reports.
    std::env::set_var("ORT_THREADS", "1");
    let serial = verify_scheme_with_oracle(&g, &scheme, &oracle).unwrap();
    std::env::set_var("ORT_THREADS", "3");
    let parallel = verify_scheme_with_oracle(&g, &scheme, &oracle).unwrap();
    assert_eq!(serial.delivered, parallel.delivered);
    assert_eq!(serial.total_hops, parallel.total_hops);
    assert_eq!(serial.stretches, parallel.stretches);
    assert_eq!(serial.failures, parallel.failures);
}
