//! Machine-checked Table 1 / Theorem 1–5 bounds.
//!
//! The paper's space/stretch claims hold on Kolmogorov-random graphs.
//! This module makes them executable: instances are drawn as seeded
//! `G(n, 1/2)` samples, *certified* operationally random through the
//! compressor-suite deficiency estimator
//! ([`ort_kolmogorov::deficiency::CompressorSuite`]), and each claim is
//! then asserted as a literal inequality against the formulas in
//! [`ort_routing::bounds`] — the same expressions the benches print.

use ort_graphs::paths::Apsp;
use ort_graphs::{generators, Graph};
use ort_kolmogorov::deficiency::CompressorSuite;
use ort_routing::scheme::RoutingScheme;
use ort_routing::schemes::theorem5::DEFAULT_C;
use ort_routing::schemes::{
    full_table::FullTableScheme, theorem1::Theorem1Scheme, theorem2::Theorem2Scheme,
    theorem3::Theorem3Scheme, theorem4::Theorem4Scheme, theorem5::Theorem5Scheme,
};
use ort_routing::verify::verify_scheme_with_oracle;
use ort_routing::{bounds as formulas, verify::VerifyReport};

/// One checked inequality.
#[derive(Debug, Clone)]
pub struct BoundCheck {
    /// Which claim (e.g. `"thm1.per_node_bits"`).
    pub id: &'static str,
    /// Instance size.
    pub n: usize,
    /// Instance seed.
    pub seed: u64,
    /// The measured quantity.
    pub observed: f64,
    /// The bound it must stay within.
    pub allowed: f64,
    /// `observed ≤ allowed`.
    pub holds: bool,
}

impl BoundCheck {
    fn new(id: &'static str, n: usize, seed: u64, observed: f64, allowed: f64) -> Self {
        BoundCheck { id, n, seed, observed, allowed, holds: observed <= allowed }
    }
}

/// Outcome for one instance: either the instance failed the randomness
/// certificate (skipped — the theorems promise nothing there) or the full
/// list of checks.
#[derive(Debug, Clone)]
pub struct InstanceBounds {
    /// Instance size.
    pub n: usize,
    /// Instance seed.
    pub seed: u64,
    /// Measured randomness deficiency (bits).
    pub deficiency: i64,
    /// The deficiency budget `c·log n + O(1)` the instance had to meet.
    pub deficiency_budget: i64,
    /// Whether the instance was certified random (checks run only then).
    pub certified: bool,
    /// The checks.
    pub checks: Vec<BoundCheck>,
}

impl InstanceBounds {
    /// Whether every executed check holds.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.checks.iter().all(|c| c.holds)
    }
}

/// The deficiency budget for certification: `c·log₂ n` plus the
/// compressor suite's own overhead margin. Our computable estimator upper-
/// bounds `C(E(G)|n)` with real codecs, so a modest constant slack keeps
/// genuinely uniform samples inside while structured graphs (whose
/// deficiency is Θ(n²) or Θ(n² log n)) stay far outside.
#[must_use]
pub fn deficiency_budget(n: usize, c: f64) -> i64 {
    (c * (n.max(2) as f64).log2()).ceil() as i64 + 64
}

/// Draws `G(n, 1/2)` from `seed`, certifies randomness, and runs every
/// Table 1 / Theorem 1–5 check.
#[must_use]
pub fn check_instance(n: usize, seed: u64) -> InstanceBounds {
    let g = generators::gnp_half(n, seed);
    check_graph(&g, n, seed)
}

/// As [`check_instance`] but on a caller-supplied graph (the tests feed
/// structured graphs through to watch certification reject them).
#[must_use]
pub fn check_graph(g: &Graph, n: usize, seed: u64) -> InstanceBounds {
    let suite = CompressorSuite::standard();
    let deficiency = suite.graph_deficiency(g);
    let budget = deficiency_budget(n, DEFAULT_C);
    let mut out = InstanceBounds {
        n,
        seed,
        deficiency,
        deficiency_budget: budget,
        certified: deficiency <= budget,
        checks: Vec::new(),
    };
    if !out.certified {
        return out;
    }
    let oracle = Apsp::compute(g).into_oracle();
    let nf = n as f64;
    let verify = |scheme: &dyn RoutingScheme| -> Option<VerifyReport> {
        verify_scheme_with_oracle(g, scheme, &oracle).ok()
    };

    // Theorem 1 (IB ∨ II): ≤ 3n bits/node with the refined cut-off (the
    // default build), 6n²/n² total either way, at stretch exactly 1. The
    // IB variant prepends the n−1-bit interconnection vector, hence +n.
    if let Ok(s) = Theorem1Scheme::build(g) {
        let max_node = (0..n).map(|u| s.node_size_bits(u)).max().unwrap_or(0) as f64;
        out.checks.push(BoundCheck::new(
            "thm1.per_node_bits",
            n,
            seed,
            max_node,
            formulas::theorem1_per_node_refined(n),
        ));
        out.checks.push(BoundCheck::new(
            "thm1.total_bits",
            n,
            seed,
            s.total_size_bits() as f64,
            formulas::theorem1_total(n),
        ));
        if let Some(r) = verify(&s) {
            out.checks.push(BoundCheck::new(
                "thm1.stretch",
                n,
                seed,
                r.max_stretch().unwrap_or(f64::INFINITY),
                1.0,
            ));
        }
    }
    if let Ok(s) = Theorem1Scheme::build_ib(g) {
        let max_node = (0..n).map(|u| s.node_size_bits(u)).max().unwrap_or(0) as f64;
        out.checks.push(BoundCheck::new(
            "thm1ib.per_node_bits",
            n,
            seed,
            max_node,
            formulas::theorem1_per_node_refined(n) + nf,
        ));
    }

    // Theorem 2 (II ∧ γ): O(n log² n) total, stretch 1.
    if let Ok(s) = Theorem2Scheme::build(g) {
        out.checks.push(BoundCheck::new(
            "thm2.total_bits",
            n,
            seed,
            s.total_size_bits() as f64,
            formulas::theorem2_total(n, DEFAULT_C),
        ));
        if let Some(r) = verify(&s) {
            out.checks.push(BoundCheck::new(
                "thm2.stretch",
                n,
                seed,
                r.max_stretch().unwrap_or(f64::INFINITY),
                1.0,
            ));
        }
    }

    // Theorem 3 (II): O(n log n) total at stretch ≤ 1.5.
    if let Ok(s) = Theorem3Scheme::build(g) {
        out.checks.push(BoundCheck::new(
            "thm3.total_bits",
            n,
            seed,
            s.total_size_bits() as f64,
            formulas::theorem3_total(n, DEFAULT_C),
        ));
        if let Some(r) = verify(&s) {
            out.checks.push(BoundCheck::new(
                "thm3.stretch",
                n,
                seed,
                r.max_stretch().unwrap_or(f64::INFINITY),
                1.5,
            ));
        }
    }

    // Theorem 4 (II): n·log log n + 6n total at stretch ≤ 2.
    if let Ok(s) = Theorem4Scheme::build(g) {
        out.checks.push(BoundCheck::new(
            "thm4.total_bits",
            n,
            seed,
            s.total_size_bits() as f64,
            formulas::theorem4_total(n),
        ));
        if let Some(r) = verify(&s) {
            out.checks.push(BoundCheck::new(
                "thm4.stretch",
                n,
                seed,
                r.max_stretch().unwrap_or(f64::INFINITY),
                2.0,
            ));
        }
    }

    // Theorem 5 (II): zero stored bits; any route uses at most
    // 2(c+3)·log n edges.
    if let Ok(s) = Theorem5Scheme::build(g) {
        out.checks.push(BoundCheck::new(
            "thm5.total_bits",
            n,
            seed,
            s.total_size_bits() as f64,
            0.0,
        ));
        if let Some(r) = verify(&s) {
            let worst_hops =
                r.stretches.iter().map(|&(h, _)| h).max().unwrap_or(0) as f64;
            out.checks.push(BoundCheck::new(
                "thm5.max_route_edges",
                n,
                seed,
                worst_hops,
                formulas::theorem5_max_edges(n, DEFAULT_C),
            ));
            out.checks.push(BoundCheck::new(
                "thm5.all_delivered",
                n,
                seed,
                r.failures.len() as f64,
                0.0,
            ));
        }
    }

    // The trivial baseline stays within its n² log n shape (2× slack for
    // the explicit per-entry port-width rounding).
    if let Ok(s) = FullTableScheme::build_with_oracle(g, &oracle) {
        out.checks.push(BoundCheck::new(
            "full_table.total_bits",
            n,
            seed,
            s.total_size_bits() as f64,
            2.0 * formulas::full_table_total(n),
        ));
    }
    out
}

/// Runs the suite over a seed sweep at each size.
#[must_use]
pub fn sweep(sizes: &[usize], seeds: &[u64]) -> Vec<InstanceBounds> {
    let mut out = Vec::new();
    for &n in sizes {
        for &seed in seeds {
            out.push(check_instance(n, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instances_certify_and_hold() {
        for seed in [1u64, 2, 3] {
            let inst = check_instance(64, seed);
            assert!(inst.certified, "seed {seed}: deficiency {}", inst.deficiency);
            assert!(!inst.checks.is_empty(), "seed {seed}: no scheme accepted the instance");
            for c in &inst.checks {
                assert!(c.holds, "seed {seed}: {} observed {} > allowed {}", c.id, c.observed, c.allowed);
            }
        }
    }

    #[test]
    fn structured_graphs_fail_certification() {
        let n = 64;
        for g in [generators::path(n), generators::complete(n), generators::star(n)] {
            let inst = check_graph(&g, n, 0);
            assert!(!inst.certified, "deficiency {} within budget {}", inst.deficiency, inst.deficiency_budget);
            assert!(inst.checks.is_empty());
        }
    }

    #[test]
    fn budget_grows_logarithmically() {
        assert!(deficiency_budget(1024, 3.0) > deficiency_budget(64, 3.0));
        assert!(deficiency_budget(64, 3.0) < 100);
    }
}
