//! Conformance & differential-testing subsystem for the
//! optimal-routing-tables workspace.
//!
//! Correctness here is a first-class, continuously-run artifact with three
//! pillars (driven by `ort conformance`, reported in
//! `results/CONFORMANCE.json`):
//!
//! 1. **Differential oracle** ([`differential`]) — every registered scheme
//!    ([`registry::SchemeId::ALL`]) is routed pair-by-pair against the
//!    full-table reference and the shared APSP [`DistanceOracle`], on
//!    *every* connected graph up to `n = 6` (exhaustive, one
//!    representative per isomorphism class via [`enumerate`]/graph6) and
//!    on seeded `G(n, 1/2)` sweeps above.
//! 2. **Structure-aware snapshot fuzzing** ([`fuzz`], engine in
//!    [`mutate`]) — valid `snapshot::save` bitstreams are truncated,
//!    bit-flipped and length-corrupted; `load`/`route_pair` must fail
//!    cleanly (`SchemeError`/`RouteFailure`), never panic, never loop past
//!    the hop limit.
//! 3. **Bound conformance** ([`bounds`]) — the paper's Table 1 /
//!    Theorem 1–5 space and stretch claims as machine-checked
//!    inequalities, evaluated on instances certified operationally
//!    Kolmogorov-random through the compressor-suite deficiency
//!    estimator.
//!
//! [`DistanceOracle`]: ort_graphs::paths::DistanceOracle

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod differential;
pub mod enumerate;
pub mod fuzz;
pub mod json;
pub mod mutate;
pub mod registry;
pub mod report;
