//! The scheme registry: one entry per constructible routing scheme, with a
//! uniform build interface and each scheme's contractual stretch cap.
//!
//! The differential oracle ([`crate::differential`]) iterates
//! [`SchemeId::ALL`] so that *every* scheme in the workspace is
//! cross-checked on every graph — adding a scheme without registering it
//! here fails the `registry_covers_every_snapshot_kind` test below.

use ort_graphs::oracle::Distances;
use ort_graphs::paths::DistanceOracle;
use ort_graphs::ports::PortAssignment;
use ort_graphs::Graph;
use ort_routing::scheme::{RoutingScheme, SchemeError};
use ort_routing::schemes::theorem5;
use ort_routing::schemes::{
    full_information::FullInformationScheme, full_table::FullTableScheme,
    ia_compact::IaCompactScheme, interval::IntervalScheme, landmark::LandmarkScheme,
    multi_interval::MultiIntervalScheme, theorem1::Theorem1Scheme, theorem2::Theorem2Scheme,
    theorem3::Theorem3Scheme, theorem4::Theorem4Scheme, theorem5::Theorem5Scheme,
};
use ort_routing::snapshot::SchemeKind;

/// Seed for the landmark scheme's hub selection — fixed so conformance
/// runs are reproducible (same value the `ort` CLI uses).
pub const LANDMARK_SEED: u64 = 7;

/// What a scheme promises about route length relative to the true
/// distance; the differential oracle asserts the promise pair by pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StretchCap {
    /// Shortest-path scheme: hops must equal the distance exactly.
    Exact,
    /// Multiplicative cap: hops ≤ factor · distance.
    Factor(f64),
    /// The Theorem 5 probe walk: hops ≤ max(distance, 2(c+3)·log n).
    ProbeWalk,
    /// Delivery is guaranteed but stretch is not (tree-based and hub
    /// baselines); only termination within the hop limit is checked.
    DeliveryOnly,
}

/// Identifier for every constructible scheme in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// Trivial full-table baseline (stretch 1, all models).
    FullTable,
    /// Theorem 1, model II variant (≤ 6n bits/node, stretch 1).
    Theorem1,
    /// Theorem 1, model IB variant (interconnection vector prepended).
    Theorem1Ib,
    /// Theorem 2 (II ∧ γ, O(n log² n) total, stretch 1).
    Theorem2,
    /// Theorem 3 (II, O(n log n) total, stretch 1.5).
    Theorem3,
    /// Theorem 4 (II, n·log log n + 6n total, stretch 2).
    Theorem4,
    /// Theorem 5 (II, zero stored bits, probe walk).
    Theorem5,
    /// Full-information scheme (Θ(n³) total, stretch 1 with failover).
    FullInformation,
    /// Interval routing over a shortest-path tree (related work).
    Interval,
    /// Shortest-path multi-interval routing (related work).
    MultiInterval,
    /// Landmark/hub baseline (related work).
    Landmark,
    /// The IA ∧ α compact scheme meeting Theorem 8's constant.
    IaCompact,
}

impl SchemeId {
    /// Every registered scheme, in a stable report order.
    pub const ALL: [SchemeId; 12] = [
        SchemeId::FullTable,
        SchemeId::Theorem1,
        SchemeId::Theorem1Ib,
        SchemeId::Theorem2,
        SchemeId::Theorem3,
        SchemeId::Theorem4,
        SchemeId::Theorem5,
        SchemeId::FullInformation,
        SchemeId::Interval,
        SchemeId::MultiInterval,
        SchemeId::Landmark,
        SchemeId::IaCompact,
    ];

    /// The label of the memory-attribution region
    /// ([`ort_telemetry::alloc::MemSpan`]) the builders open — one per
    /// scheme, so `ort profile --mem` can attribute region peaks to the
    /// exact build phase.
    #[must_use]
    fn mem_label(self) -> &'static str {
        match self {
            SchemeId::FullTable => "build.full-table",
            SchemeId::Theorem1 => "build.theorem1",
            SchemeId::Theorem1Ib => "build.theorem1-ib",
            SchemeId::Theorem2 => "build.theorem2",
            SchemeId::Theorem3 => "build.theorem3",
            SchemeId::Theorem4 => "build.theorem4",
            SchemeId::Theorem5 => "build.theorem5",
            SchemeId::FullInformation => "build.full-information",
            SchemeId::Interval => "build.interval",
            SchemeId::MultiInterval => "build.multi-interval",
            SchemeId::Landmark => "build.landmark",
            SchemeId::IaCompact => "build.ia-compact",
        }
    }

    /// The CLI/report name of the scheme.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchemeId::FullTable => "full-table",
            SchemeId::Theorem1 => "theorem1",
            SchemeId::Theorem1Ib => "theorem1-ib",
            SchemeId::Theorem2 => "theorem2",
            SchemeId::Theorem3 => "theorem3",
            SchemeId::Theorem4 => "theorem4",
            SchemeId::Theorem5 => "theorem5",
            SchemeId::FullInformation => "full-information",
            SchemeId::Interval => "interval",
            SchemeId::MultiInterval => "multi-interval",
            SchemeId::Landmark => "landmark",
            SchemeId::IaCompact => "ia-compact",
        }
    }

    /// Builds the scheme on `g`. A `Precondition`/`Disconnected` error is
    /// a legitimate *refusal* (the theorem schemes assume Kolmogorov-random
    /// graphs), which the differential oracle records but does not flag.
    ///
    /// # Errors
    ///
    /// Returns the construction's [`SchemeError`].
    pub fn build(self, g: &Graph) -> Result<Box<dyn RoutingScheme>, SchemeError> {
        let _mem = ort_telemetry::alloc::mem_span(self.mem_label());
        Ok(match self {
            SchemeId::FullTable => Box::new(FullTableScheme::build(g)?),
            SchemeId::Theorem1 => Box::new(Theorem1Scheme::build(g)?),
            SchemeId::Theorem1Ib => Box::new(Theorem1Scheme::build_ib(g)?),
            SchemeId::Theorem2 => Box::new(Theorem2Scheme::build(g)?),
            SchemeId::Theorem3 => Box::new(Theorem3Scheme::build(g)?),
            SchemeId::Theorem4 => Box::new(Theorem4Scheme::build(g)?),
            SchemeId::Theorem5 => Box::new(Theorem5Scheme::build(g)?),
            SchemeId::FullInformation => Box::new(FullInformationScheme::build(g)?),
            SchemeId::Interval => Box::new(IntervalScheme::build(g)?),
            SchemeId::MultiInterval => Box::new(MultiIntervalScheme::build(g)?),
            SchemeId::Landmark => Box::new(LandmarkScheme::build(g, LANDMARK_SEED)?),
            SchemeId::IaCompact => {
                Box::new(IaCompactScheme::build(g, PortAssignment::sorted(g))?)
            }
        })
    }

    /// As [`SchemeId::build`], reading all-pairs distances from a shared
    /// [`DistanceOracle`] where the construction supports it (full-table,
    /// multi-interval, full-information, landmark — the APSP-hungry
    /// builds); the rest delegate to [`SchemeId::build`] unchanged. One
    /// APSP can then serve construction, verification and tracing.
    ///
    /// # Errors
    ///
    /// Returns the construction's [`SchemeError`].
    pub fn build_with_oracle(
        self,
        g: &Graph,
        oracle: &DistanceOracle,
    ) -> Result<Box<dyn RoutingScheme>, SchemeError> {
        self.build_with_dists(g, &**oracle)
    }

    /// As [`SchemeId::build`] for any *exact* [`Distances`] implementation
    /// — notably [`ort_graphs::oracle::BandedOracle`], under which every
    /// registered scheme builds with peak distance memory of one band.
    /// Exact oracles all produce byte-identical schemes (the
    /// `builder_bands` differential harness proves this against
    /// [`SchemeId::build`] across band widths and thread counts).
    ///
    /// # Errors
    ///
    /// As [`SchemeId::build`], plus [`SchemeError::ApproximateOracle`]
    /// for inexact oracles and a precondition error on an oracle/graph
    /// size mismatch.
    pub fn build_with_dists(
        self,
        g: &Graph,
        dists: &dyn Distances,
    ) -> Result<Box<dyn RoutingScheme>, SchemeError> {
        let _mem = ort_telemetry::alloc::mem_span(self.mem_label());
        Ok(match self {
            SchemeId::FullTable => Box::new(FullTableScheme::build_with_dists(g, dists)?),
            SchemeId::Theorem1 => Box::new(Theorem1Scheme::build_with_dists(g, dists)?),
            SchemeId::Theorem1Ib => Box::new(Theorem1Scheme::build_ib_with_dists(g, dists)?),
            SchemeId::Theorem2 => Box::new(Theorem2Scheme::build_with_dists(g, dists)?),
            SchemeId::Theorem3 => Box::new(Theorem3Scheme::build_with_dists(g, dists)?),
            SchemeId::Theorem4 => Box::new(Theorem4Scheme::build_with_dists(g, dists)?),
            SchemeId::Theorem5 => Box::new(Theorem5Scheme::build_with_dists(g, dists)?),
            SchemeId::FullInformation => {
                Box::new(FullInformationScheme::build_with_dists(g, dists)?)
            }
            SchemeId::Interval => Box::new(IntervalScheme::build_with_dists(g, dists)?),
            SchemeId::MultiInterval => {
                Box::new(MultiIntervalScheme::build_with_dists(g, dists)?)
            }
            SchemeId::Landmark => {
                // Same default landmark count as `LandmarkScheme::build`.
                let n = g.node_count();
                let count = ((n as f64) * (n.max(2) as f64).log2()).sqrt().ceil() as usize;
                Box::new(LandmarkScheme::build_with_dists(
                    g,
                    dists,
                    LANDMARK_SEED,
                    count.clamp(1, n),
                )?)
            }
            SchemeId::IaCompact => {
                Box::new(IaCompactScheme::build_with_dists(g, PortAssignment::sorted(g), dists)?)
            }
        })
    }

    /// The scheme's contractual stretch cap.
    #[must_use]
    pub fn stretch_cap(self) -> StretchCap {
        match self {
            SchemeId::FullTable
            | SchemeId::Theorem1
            | SchemeId::Theorem1Ib
            | SchemeId::Theorem2
            | SchemeId::FullInformation
            | SchemeId::MultiInterval
            | SchemeId::IaCompact => StretchCap::Exact,
            SchemeId::Theorem3 => StretchCap::Factor(1.5),
            SchemeId::Theorem4 => StretchCap::Factor(2.0),
            SchemeId::Theorem5 => StretchCap::ProbeWalk,
            SchemeId::Interval | SchemeId::Landmark => StretchCap::DeliveryOnly,
        }
    }

    /// The hop cap implied by [`SchemeId::stretch_cap`] for a pair at
    /// distance `dist` in an `n`-node graph, or `None` when only delivery
    /// within the global hop limit is promised.
    #[must_use]
    pub fn hop_cap(self, n: usize, dist: u32) -> Option<u32> {
        match self.stretch_cap() {
            StretchCap::Exact => Some(dist),
            StretchCap::Factor(f) => Some((f * f64::from(dist) + 1e-9).floor() as u32),
            StretchCap::ProbeWalk => {
                let probes =
                    ort_routing::bounds::theorem5_max_edges(n, theorem5::DEFAULT_C).ceil() as u32;
                Some(dist.max(probes))
            }
            StretchCap::DeliveryOnly => None,
        }
    }

    /// The snapshot container kind, for schemes that support persistence.
    #[must_use]
    pub fn snapshot_kind(self) -> Option<SchemeKind> {
        Some(match self {
            SchemeId::FullTable => SchemeKind::FullTable,
            SchemeId::Theorem1 => SchemeKind::Theorem1,
            SchemeId::Theorem1Ib => SchemeKind::Theorem1Ib,
            SchemeId::Theorem2 => SchemeKind::Theorem2,
            SchemeId::Theorem5 => SchemeKind::Theorem5,
            SchemeId::FullInformation => SchemeKind::FullInformation,
            SchemeId::MultiInterval => SchemeKind::MultiInterval,
            _ => return None,
        })
    }

    /// The registry entry holding a given snapshot kind.
    #[must_use]
    pub fn from_snapshot_kind(kind: SchemeKind) -> Option<SchemeId> {
        SchemeId::ALL.iter().copied().find(|id| id.snapshot_kind() == Some(kind))
    }

    /// The registry entry with a given CLI/report name — the inverse of
    /// [`SchemeId::name`], used by `ort profile`/`ort bench-gate`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<SchemeId> {
        SchemeId::ALL.iter().copied().find(|id| id.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ort_graphs::generators;

    #[test]
    fn registry_covers_every_snapshot_kind() {
        for kind in SchemeKind::ALL {
            assert!(
                SchemeId::from_snapshot_kind(kind).is_some(),
                "snapshot kind {kind:?} has no registry entry"
            );
        }
    }

    #[test]
    fn from_name_inverts_name() {
        for id in SchemeId::ALL {
            assert_eq!(SchemeId::from_name(id.name()), Some(id));
        }
        assert_eq!(SchemeId::from_name("no-such-scheme"), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SchemeId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SchemeId::ALL.len());
    }

    #[test]
    fn every_scheme_builds_on_a_random_graph() {
        let g = generators::gnp_half(32, 3);
        for id in SchemeId::ALL {
            let built = id.build(&g);
            assert!(built.is_ok(), "{} refused G(32,1/2) seed 3: {:?}", id.name(), built.err());
        }
    }

    #[test]
    fn build_with_oracle_is_bit_identical_to_build() {
        let g = generators::gnp_half(24, 3);
        let oracle = ort_graphs::paths::Apsp::compute(&g).into_oracle();
        for id in SchemeId::ALL {
            let a = id.build(&g).unwrap();
            let b = id.build_with_oracle(&g, &oracle).unwrap();
            for u in 0..24 {
                assert_eq!(a.node_bits(u), b.node_bits(u), "{} node {u}", id.name());
            }
        }
    }

    #[test]
    fn hop_caps_match_contracts() {
        assert_eq!(SchemeId::FullTable.hop_cap(64, 2), Some(2));
        assert_eq!(SchemeId::Theorem3.hop_cap(64, 2), Some(3));
        assert_eq!(SchemeId::Theorem4.hop_cap(64, 2), Some(4));
        assert!(SchemeId::Theorem5.hop_cap(64, 2).unwrap() >= 2);
        assert_eq!(SchemeId::Interval.hop_cap(64, 2), None);
    }
}
