//! The shared bitstream mutation engine.
//!
//! One place for every corruption strategy used across the workspace's
//! fuzz suites (`tests/fuzz_robustness.rs` and the snapshot fuzzer in
//! [`crate::fuzz`]), so the suites exercise the same adversary instead of
//! drifting apart. All mutations are deterministic functions of a seed —
//! any reported failure is reproducible from `(base input, seed)` alone.

use ort_bitio::BitVec;

/// A tiny deterministic generator (64-bit LCG, Knuth's constants — the
/// same stream `tests/fuzz_robustness.rs` has always used for noise).
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeds the generator. Seed 0 is mapped away from the fixed point.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Lcg { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }

    /// Uniform-ish value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// One noise bit.
    pub fn bit(&mut self) -> bool {
        (self.next_u64() >> 63) & 1 == 1
    }
}

/// A uniformly random bit string of the given length, from a fixed seed.
#[must_use]
pub fn random_bits(seed: u64, len: usize) -> BitVec {
    let mut rng = Lcg::new(seed);
    (0..len).map(|_| rng.bit()).collect()
}

/// Flips bit `i` of `bits` in place (no-op when out of range).
pub fn flip_bit(bits: &mut BitVec, i: usize) {
    if let Some(b) = bits.get(i) {
        bits.set(i, !b);
    }
}

/// The corruption strategies the engine draws from.
///
/// `LengthField` deserves a note: the snapshot container's length fields
/// (node count, degrees, per-node bit-string lengths) all live in the
/// first ~15% of the stream for small graphs, so biasing bit flips into
/// the stream head is a cheap, structure-aware way to hit them hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Flip a single random bit.
    FlipOne,
    /// Flip a burst of up to 8 random bits.
    FlipBurst,
    /// Flip a random bit within the first 48 bits or first 15% of the
    /// stream (whichever is larger) — the header / length-field region.
    LengthField,
    /// Truncate at a random position.
    Truncate,
    /// Append 1–64 random bits.
    Extend,
    /// Overwrite a random window (up to 32 bits) with noise.
    Splice,
    /// Duplicate a random window (up to 32 bits) at the end.
    DuplicateTail,
}

impl Mutation {
    /// All strategies, cycled through by [`mutate`].
    pub const ALL: [Mutation; 7] = [
        Mutation::FlipOne,
        Mutation::FlipBurst,
        Mutation::LengthField,
        Mutation::Truncate,
        Mutation::Extend,
        Mutation::Splice,
        Mutation::DuplicateTail,
    ];
}

/// Applies the seed-selected mutation to a copy of `base` and returns it
/// together with the strategy used. Deterministic in `(base, seed)`.
#[must_use]
pub fn mutate(base: &BitVec, seed: u64) -> (BitVec, Mutation) {
    let mut rng = Lcg::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed));
    let kind = Mutation::ALL[(seed % Mutation::ALL.len() as u64) as usize];
    let mut out = base.clone();
    let len = out.len();
    match kind {
        Mutation::FlipOne => {
            if len > 0 {
                flip_bit(&mut out, rng.below(len));
            }
        }
        Mutation::FlipBurst => {
            for _ in 0..rng.below(8) + 1 {
                if len > 0 {
                    flip_bit(&mut out, rng.below(len));
                }
            }
        }
        Mutation::LengthField => {
            let head = (len / 7).max(48).min(len);
            if head > 0 {
                flip_bit(&mut out, rng.below(head));
            }
        }
        Mutation::Truncate => {
            out.truncate(rng.below(len + 1));
        }
        Mutation::Extend => {
            for _ in 0..rng.below(64) + 1 {
                out.push(rng.bit());
            }
        }
        Mutation::Splice => {
            if len > 0 {
                let start = rng.below(len);
                let width = rng.below(32) + 1;
                for i in start..(start + width).min(len) {
                    out.set(i, rng.bit());
                }
            }
        }
        Mutation::DuplicateTail => {
            if len > 0 {
                let start = rng.below(len);
                let width = (rng.below(32) + 1).min(len - start);
                for i in start..start + width {
                    let b = out.get(i).expect("in range");
                    out.push(b);
                }
            }
        }
    }
    (out, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_are_deterministic() {
        let base = random_bits(5, 400);
        for seed in 0..64 {
            let (a, ka) = mutate(&base, seed);
            let (b, kb) = mutate(&base, seed);
            assert_eq!(a, b);
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn every_strategy_is_exercised_and_usually_changes_the_input() {
        let base = random_bits(9, 600);
        let mut seen = std::collections::HashSet::new();
        let mut changed = 0usize;
        for seed in 0..256u64 {
            let (m, kind) = mutate(&base, seed);
            seen.insert(kind);
            if m != base {
                changed += 1;
            }
        }
        assert_eq!(seen.len(), Mutation::ALL.len(), "strategies seen: {seen:?}");
        // A FlipOne undone by a colliding second flip is impossible; only
        // degenerate Truncate(len) or width-0 windows can no-op.
        assert!(changed >= 250, "only {changed}/256 mutations changed the input");
    }

    #[test]
    fn mutate_handles_tiny_inputs() {
        for len in 0..4usize {
            let base = random_bits(1, len);
            for seed in 0..32u64 {
                let _ = mutate(&base, seed);
            }
        }
    }

    #[test]
    fn random_bits_matches_legacy_stream() {
        // The legacy fuzz suite derived noise from this exact LCG; keep the
        // stream stable so historical failure seeds stay reproducible.
        let a = random_bits(42, 128);
        let mut state = 42u64 | 1;
        let b: BitVec = (0..128)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (state >> 63) & 1 == 1
            })
            .collect();
        assert_eq!(a, b);
    }
}
