//! A minimal JSON value with stable, deterministic serialization — the
//! workspace is offline, so no serde; the conformance report only needs
//! objects, arrays, strings, numbers, booleans and null.

use std::fmt;

/// A JSON value. Object keys keep insertion order (deterministic output).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (serialized without a decimal point).
    Int(i64),
    /// Float (serialized via `{:?}`, NaN/±∞ mapped to `null`).
    Num(f64),
    /// String (escaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with 2-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // {:?} keeps a trailing ".0" on integral floats, which
                    // keeps the field type stable across runs.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_shapes() {
        let v = Json::obj(vec![
            ("name", Json::Str("a \"b\"\n".into())),
            ("n", Json::Int(64)),
            ("stretch", Json::Num(1.5)),
            ("pass", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"a \\\"b\\\"\\n\""));
        assert!(s.contains("\"stretch\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integral_floats_keep_their_point() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
    }
}
