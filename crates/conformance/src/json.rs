//! A minimal JSON value with stable, deterministic serialization — the
//! workspace is offline, so no serde; the conformance report only needs
//! objects, arrays, strings, numbers, booleans and null.

use std::fmt;

/// A JSON value. Object keys keep insertion order (deterministic output).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (serialized without a decimal point).
    Int(i64),
    /// Float (serialized via `{:?}`, NaN/±∞ mapped to `null`).
    Num(f64),
    /// String (escaped).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document — the inverse of [`Json::pretty`], used by
    /// `ort bench-gate` to read checked-in baselines back. Numbers with a
    /// decimal point or exponent become [`Json::Num`]; bare integers that
    /// fit an `i64` become [`Json::Int`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an [`Json::Int`].
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value — either variant — as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an [`Json::Arr`].
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    /// Serializes on one line, no trailing newline — the JSONL form used
    /// by `results/HISTORY.jsonl`.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut s = String::new();
        self.write_compact(&mut s);
        s
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out, 0);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) => {
                if x.is_finite() {
                    // {:?} keeps a trailing ".0" on integral floats, which
                    // keeps the field type stable across runs.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Recursive-descent parser over the document bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (document came from a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse().map(Json::Int).map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_shapes() {
        let v = Json::obj(vec![
            ("name", Json::Str("a \"b\"\n".into())),
            ("n", Json::Int(64)),
            ("stretch", Json::Num(1.5)),
            ("pass", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"a \\\"b\\\"\\n\""));
        assert!(s.contains("\"stretch\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integral_floats_keep_their_point() {
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Json::obj(vec![
            ("name", Json::Str("a \"b\"\n\u{3b2}".into())),
            ("n", Json::Int(-64)),
            ("stretch", Json::Num(1.5)),
            ("pass", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Int(1), Json::obj(vec![("y", Json::Num(2.0))])]),),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.pretty(), text);
        assert_eq!(back.get("n").and_then(Json::as_i64), Some(-64));
        assert_eq!(back.get("stretch").and_then(Json::as_f64), Some(1.5));
        assert_eq!(back.get("name").and_then(Json::as_str), Some("a \"b\"\n\u{3b2}"));
        assert_eq!(back.get("xs").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn compact_is_one_line_and_parses_back() {
        let v = Json::obj(vec![
            ("file", Json::Str("X.json".into())),
            ("schema", Json::Int(1)),
            ("xs", Json::Arr(vec![Json::Int(1), Json::Bool(false)])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'));
        assert_eq!(line, "{\"file\":\"X.json\",\"schema\":1,\"xs\":[1,false]}");
        assert_eq!(Json::parse(&line).unwrap().pretty(), v.pretty());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_reads_checked_in_bench_shape() {
        let doc = "{\n  \"bench\": \"apsp\",\n  \"results\": [\n    {\"engine\": \"queue_serial\", \"n\": 128, \"ms\": 1.021}\n  ]\n}\n";
        let v = Json::parse(doc).unwrap();
        let first = &v.get("results").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(first.get("engine").and_then(Json::as_str), Some("queue_serial"));
        assert_eq!(first.get("ms").and_then(Json::as_f64), Some(1.021));
    }
}
