//! The conformance run: orchestrates the three pillars (differential
//! oracle, snapshot fuzzer, bound suite) and assembles the
//! `results/CONFORMANCE.json` report.

use ort_graphs::generators;
use ort_graphs::random_props::RandomnessReport;

use crate::bounds::{self, InstanceBounds};
use crate::differential::{aggregate, diff_graph, GraphDiff};
use crate::enumerate::{connected_graphs_upto, expected_count};
use crate::fuzz::{fuzz_all_kinds, FuzzOutcome};
use crate::json::Json;
use crate::registry::SchemeId;
use ort_routing::snapshot::SchemeKind;

/// Configuration of a conformance run. `Default` is the CI profile.
#[derive(Debug, Clone)]
pub struct Config {
    /// Exhaustive differential testing over every connected graph on
    /// `2..=exhaustive_n` nodes (one representative per isomorphism
    /// class).
    pub exhaustive_n: usize,
    /// Seeded `G(n, 1/2)` sweep sizes for the differential oracle.
    pub sweep_sizes: Vec<usize>,
    /// Seeds per sweep size.
    pub sweep_seeds: Vec<u64>,
    /// Ordered pairs are sampled with this stride for `n ≥ 48` (all pairs
    /// below).
    pub large_n_stride: usize,
    /// Snapshot mutations per [`SchemeKind`].
    pub fuzz_per_kind: usize,
    /// `(n, seed)` for the pristine fuzz bases.
    pub fuzz_base: (usize, u64),
    /// Bound-suite sizes.
    pub bound_sizes: Vec<usize>,
    /// Bound-suite seeds per size.
    pub bound_seeds: Vec<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            exhaustive_n: 6,
            sweep_sizes: vec![16, 32, 64],
            sweep_seeds: vec![1, 2, 3],
            large_n_stride: 3,
            fuzz_per_kind: 1500, // × 7 kinds ⇒ 10 500 mutations ≥ the 10k floor
            fuzz_base: (24, 11),
            bound_sizes: vec![64, 128],
            bound_seeds: vec![11, 12, 13],
        }
    }
}

/// Everything a conformance run produced.
#[derive(Debug)]
pub struct RunResult {
    /// The configuration used.
    pub config: Config,
    /// Exhaustive per-size results: `(n, class count, diffs)`.
    pub exhaustive: Vec<(usize, usize, Vec<GraphDiff>)>,
    /// Sweep results: `(n, seed, diff)`.
    pub sweeps: Vec<(usize, u64, GraphDiff)>,
    /// Fuzz outcomes per snapshot kind.
    pub fuzz: Vec<(SchemeKind, FuzzOutcome)>,
    /// Bound-suite results.
    pub bounds: Vec<InstanceBounds>,
    /// Violation summaries (empty ⇔ pass).
    pub violations: Vec<String>,
}

impl RunResult {
    /// Whether the run found no violation anywhere.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Executes a full conformance run. `log` receives progress lines.
///
/// # Errors
///
/// Returns an error string if a fuzz base cannot be built (config names a
/// graph some snapshot-capable scheme refuses).
pub fn run(config: &Config, mut log: impl FnMut(&str)) -> Result<RunResult, String> {
    let _span = ort_telemetry::span("conformance.run");
    let mut violations = Vec::new();

    // Pillar 1a: exhaustive differential oracle on all small graphs.
    let oracle_span = ort_telemetry::span("conformance.oracle");
    let mut exhaustive = Vec::new();
    for (n, graphs) in connected_graphs_upto(config.exhaustive_n) {
        if let Some(want) = expected_count(n) {
            if graphs.len() != want {
                violations.push(format!(
                    "enumeration at n={n}: {} isomorphism classes, expected {want}",
                    graphs.len()
                ));
            }
        }
        let diffs: Vec<GraphDiff> = graphs.iter().map(|g| diff_graph(g, 1)).collect();
        let found: usize = diffs.iter().map(|d| d.disagreements().len()).sum();
        log(&format!(
            "exhaustive n={n}: {} connected graphs, {found} disagreements",
            graphs.len()
        ));
        for d in &diffs {
            for dis in d.disagreements() {
                violations.push(format!("exhaustive n={n}: {dis}"));
            }
        }
        exhaustive.push((n, graphs.len(), diffs));
    }

    // Pillar 1b: seeded G(n, 1/2) sweeps. A sample that satisfies the
    // paper's Lemma 1–3 statistics must be *accepted* by every scheme —
    // refusing such a graph is a regression. Small samples that happen to
    // miss the statistics (e.g. diameter > 2 at n = 16) may be refused;
    // the refusal is tallied but is not a violation.
    let mut sweeps = Vec::new();
    for &n in &config.sweep_sizes {
        for &seed in &config.sweep_seeds {
            let g = generators::gnp_half(n, seed);
            let lemmas_hold = RandomnessReport::evaluate(&g, 3.0).all_hold();
            let stride = if n >= 48 { config.large_n_stride } else { 1 };
            let diff = diff_graph(&g, stride);
            for dis in diff.disagreements() {
                violations.push(format!("sweep n={n} seed={seed}: {dis}"));
            }
            let mut refused = 0usize;
            for sd in &diff.schemes {
                if let Some(reason) = &sd.refusal {
                    refused += 1;
                    if lemmas_hold {
                        violations.push(format!(
                            "sweep n={n} seed={seed}: {} refused a graph satisfying Lemmas 1-3: {reason}",
                            sd.id.name()
                        ));
                    }
                }
            }
            log(&format!(
                "sweep n={n} seed={seed}: lemmas_hold={lemmas_hold}, {refused} refusals, {} disagreements",
                diff.disagreements().len()
            ));
            sweeps.push((n, seed, diff));
        }
    }
    drop(oracle_span);

    // Pillar 2: structure-aware snapshot fuzzing.
    let fuzz_span = ort_telemetry::span("conformance.fuzz");
    let (fn_, fseed) = config.fuzz_base;
    let fuzz = fuzz_all_kinds(fn_, fseed, config.fuzz_per_kind)
        .map_err(|e| format!("fuzz base G({fn_},1/2) seed {fseed} refused: {e}"))?;
    for (kind, out) in &fuzz {
        if out.load_rejected + out.loaded_ok != out.mutations {
            violations.push(format!("fuzz {kind:?}: unaccounted mutations"));
        }
        log(&format!(
            "fuzz {kind:?}: {} mutations, {} rejected at load, {} loaded ({} clean route failures, {} delivered)",
            out.mutations, out.load_rejected, out.loaded_ok, out.route_failures, out.route_ok
        ));
    }
    drop(fuzz_span);

    // Pillar 3: machine-checked paper bounds.
    let _bounds_span = ort_telemetry::span("conformance.bounds");
    let bound_results = bounds::sweep(&config.bound_sizes, &config.bound_seeds);
    for inst in &bound_results {
        if !inst.certified {
            violations.push(format!(
                "bounds n={} seed={}: G(n,1/2) sample failed randomness certification (deficiency {} > {})",
                inst.n, inst.seed, inst.deficiency, inst.deficiency_budget
            ));
            continue;
        }
        if inst.checks.is_empty() {
            violations.push(format!(
                "bounds n={} seed={}: no theorem scheme accepted a certified-random graph",
                inst.n, inst.seed
            ));
        }
        for c in &inst.checks {
            if !c.holds {
                violations.push(format!(
                    "bounds n={} seed={}: {} observed {} > allowed {}",
                    inst.n, inst.seed, c.id, c.observed, c.allowed
                ));
            }
        }
        log(&format!(
            "bounds n={} seed={}: deficiency {} ≤ {}, {} checks",
            inst.n, inst.seed, inst.deficiency, inst.deficiency_budget, inst.checks.len()
        ));
    }

    Ok(RunResult {
        config: config.clone(),
        exhaustive,
        sweeps,
        fuzz,
        bounds: bound_results,
        violations,
    })
}

/// Renders the run as the `results/CONFORMANCE.json` document.
#[must_use]
pub fn to_json(result: &RunResult) -> Json {
    let config = &result.config;
    let scheme_agg = |diffs: &[GraphDiff]| -> Json {
        Json::Obj(
            aggregate(diffs)
                .into_iter()
                .map(|(id, a)| {
                    (
                        id.name().to_string(),
                        Json::obj(vec![
                            ("accepted", Json::Int(a.accepted as i64)),
                            ("refused", Json::Int(a.refused as i64)),
                            ("pairs", Json::Int(a.pairs as i64)),
                            ("delivered", Json::Int(a.delivered as i64)),
                            ("max_stretch", a.max_stretch.map_or(Json::Null, Json::Num)),
                            ("disagreements", Json::Int(a.disagreements as i64)),
                        ]),
                    )
                })
                .collect(),
        )
    };
    let exhaustive = Json::Arr(
        result
            .exhaustive
            .iter()
            .map(|(n, classes, diffs)| {
                Json::obj(vec![
                    ("n", Json::Int(*n as i64)),
                    ("isomorphism_classes", Json::Int(*classes as i64)),
                    (
                        "expected_classes",
                        expected_count(*n).map_or(Json::Null, |c| Json::Int(c as i64)),
                    ),
                    ("schemes", scheme_agg(diffs)),
                ])
            })
            .collect(),
    );
    let sweeps = Json::Arr(
        result
            .sweeps
            .iter()
            .map(|(n, seed, diff)| {
                let diffs = std::slice::from_ref(diff);
                Json::obj(vec![
                    ("n", Json::Int(*n as i64)),
                    ("seed", Json::Int(*seed as i64)),
                    ("schemes", scheme_agg(diffs)),
                ])
            })
            .collect(),
    );
    let fuzz_total: usize = result.fuzz.iter().map(|(_, o)| o.mutations).sum();
    let fuzz = Json::obj(vec![
        ("base_n", Json::Int(config.fuzz_base.0 as i64)),
        ("base_seed", Json::Int(config.fuzz_base.1 as i64)),
        ("total_mutations", Json::Int(fuzz_total as i64)),
        ("panics", Json::Int(0)), // a panic aborts the run before reporting
        (
            "per_kind",
            Json::Obj(
                result
                    .fuzz
                    .iter()
                    .map(|(kind, o)| {
                        (
                            format!("{kind:?}"),
                            Json::obj(vec![
                                ("mutations", Json::Int(o.mutations as i64)),
                                ("load_rejected", Json::Int(o.load_rejected as i64)),
                                ("loaded_ok", Json::Int(o.loaded_ok as i64)),
                                ("route_clean_failures", Json::Int(o.route_failures as i64)),
                                ("route_delivered", Json::Int(o.route_ok as i64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);
    let bounds = Json::Arr(
        result
            .bounds
            .iter()
            .map(|inst| {
                Json::obj(vec![
                    ("n", Json::Int(inst.n as i64)),
                    ("seed", Json::Int(inst.seed as i64)),
                    ("deficiency_bits", Json::Int(inst.deficiency)),
                    ("deficiency_budget", Json::Int(inst.deficiency_budget)),
                    ("certified_random", Json::Bool(inst.certified)),
                    (
                        "checks",
                        Json::Arr(
                            inst.checks
                                .iter()
                                .map(|c| {
                                    Json::obj(vec![
                                        ("id", Json::Str(c.id.to_string())),
                                        ("observed", Json::Num(c.observed)),
                                        ("allowed", Json::Num(c.allowed)),
                                        ("holds", Json::Bool(c.holds)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("suite", Json::Str("ort conformance".into())),
        (
            "config",
            Json::obj(vec![
                ("exhaustive_n", Json::Int(config.exhaustive_n as i64)),
                (
                    "sweep_sizes",
                    Json::Arr(config.sweep_sizes.iter().map(|&n| Json::Int(n as i64)).collect()),
                ),
                (
                    "sweep_seeds",
                    Json::Arr(config.sweep_seeds.iter().map(|&s| Json::Int(s as i64)).collect()),
                ),
                ("fuzz_per_kind", Json::Int(config.fuzz_per_kind as i64)),
                (
                    "bound_sizes",
                    Json::Arr(config.bound_sizes.iter().map(|&n| Json::Int(n as i64)).collect()),
                ),
                (
                    "bound_seeds",
                    Json::Arr(config.bound_seeds.iter().map(|&s| Json::Int(s as i64)).collect()),
                ),
            ]),
        ),
        (
            "schemes_covered",
            Json::Arr(SchemeId::ALL.iter().map(|id| Json::Str(id.name().into())).collect()),
        ),
        ("differential_exhaustive", exhaustive),
        ("differential_sweeps", sweeps),
        ("fuzz", fuzz),
        ("bounds", bounds),
        (
            "violations",
            Json::Arr(result.violations.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
        ("pass", Json::Bool(result.pass())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_passes_and_serializes() {
        let config = Config {
            exhaustive_n: 4,
            sweep_sizes: vec![16],
            sweep_seeds: vec![1],
            large_n_stride: 3,
            fuzz_per_kind: 40,
            fuzz_base: (24, 11),
            bound_sizes: vec![64],
            bound_seeds: vec![11],
        };
        let result = run(&config, |_| {}).unwrap();
        assert!(result.pass(), "violations: {:?}", result.violations);
        let json = to_json(&result).pretty();
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("\"theorem5\""));
        assert!(json.contains("\"FullTable\""));
    }
}
