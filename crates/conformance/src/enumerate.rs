//! Exhaustive small-graph enumeration.
//!
//! For `n ≤ 7` every connected graph (one representative per isomorphism
//! class) is enumerated by walking all `2^{n(n−1)/2}` edge masks and
//! keeping the masks that are lexicographic minima over the `n!` vertex
//! permutations — the brute-force canonical form. Each representative is
//! round-tripped through the `graph6` interchange format before use, so
//! the enumeration doubles as an exhaustive graph6 conformance test
//! against external tools' graph lists (counts match OEIS A001349).

use ort_graphs::{graph6, Graph};

/// Number of unordered pairs on `n` nodes.
fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// All permutations of `0..n` (plain recursion; `n ≤ 7` ⇒ ≤ 5040).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    fn rec(cur: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == cur.len() {
            out.push(cur.clone());
            return;
        }
        for i in k..cur.len() {
            cur.swap(k, i);
            rec(cur, k + 1, out);
            cur.swap(k, i);
        }
    }
    rec(&mut cur, 0, &mut out);
    out
}

/// Applies a vertex permutation to an edge mask.
fn permute_mask(n: usize, mask: u64, perm: &[usize]) -> u64 {
    let mut out = 0u64;
    for i in 0..pair_count(n) {
        if mask >> i & 1 == 1 {
            let (u, v) = Graph::index_to_edge(n, i);
            out |= 1 << Graph::edge_index(n, perm[u], perm[v]);
        }
    }
    out
}

/// Connectivity check directly on the mask (union-find would be overkill:
/// a BFS over an adjacency word per node).
fn mask_connected(n: usize, mask: u64) -> bool {
    if n == 0 {
        return false;
    }
    let mut adj = vec![0u64; n];
    for i in 0..pair_count(n) {
        if mask >> i & 1 == 1 {
            let (u, v) = Graph::index_to_edge(n, i);
            adj[u] |= 1 << v;
            adj[v] |= 1 << u;
        }
    }
    let mut seen = 1u64;
    let mut frontier = 1u64;
    while frontier != 0 {
        let mut next = 0u64;
        let mut f = frontier;
        while f != 0 {
            let u = f.trailing_zeros() as usize;
            f &= f - 1;
            next |= adj[u] & !seen;
        }
        seen |= next;
        frontier = next;
    }
    seen.count_ones() as usize == n
}

/// Builds the graph for an edge mask.
fn mask_to_graph(n: usize, mask: u64) -> Graph {
    let mut g = Graph::empty(n);
    for i in 0..pair_count(n) {
        if mask >> i & 1 == 1 {
            let (u, v) = Graph::index_to_edge(n, i);
            g.add_edge(u, v).expect("valid pair");
        }
    }
    g
}

/// One representative per isomorphism class of *connected* graphs on
/// exactly `n` nodes, each round-tripped through graph6.
///
/// # Panics
///
/// Panics if `n > 7` (the brute-force canonical form is for small `n`
/// only) or if the graph6 round trip is not the identity — the latter is
/// itself a conformance check.
#[must_use]
pub fn connected_graphs(n: usize) -> Vec<Graph> {
    assert!(n <= 7, "exhaustive enumeration is for n ≤ 7 (got {n})");
    if n == 0 {
        return Vec::new();
    }
    let perms = permutations(n);
    let bits = pair_count(n);
    let mut out = Vec::new();
    for mask in 0..(1u64 << bits) {
        if !mask_connected(n, mask) {
            continue;
        }
        // Keep only the lexicographically-minimal mask of each class.
        if perms.iter().any(|p| permute_mask(n, mask, p) < mask) {
            continue;
        }
        let g = mask_to_graph(n, mask);
        let s = graph6::to_graph6(&g).expect("n ≤ 7 fits graph6");
        let back = graph6::from_graph6(&s).expect("own output parses");
        assert_eq!(back, g, "graph6 round trip must be the identity");
        out.push(back);
    }
    out
}

/// Representatives of every connected graph on `2..=max_n` nodes, with
/// their node counts.
#[must_use]
pub fn connected_graphs_upto(max_n: usize) -> Vec<(usize, Vec<Graph>)> {
    (2..=max_n).map(|n| (n, connected_graphs(n))).collect()
}

/// The number of connected graphs on `n` nodes up to isomorphism
/// (OEIS A001349) — the enumeration's ground truth.
#[must_use]
pub fn expected_count(n: usize) -> Option<usize> {
    [1, 1, 1, 2, 6, 21, 112, 853].get(n).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_oeis_a001349() {
        for n in 1..=5 {
            assert_eq!(
                connected_graphs(n).len(),
                expected_count(n).unwrap(),
                "connected graph count at n = {n}"
            );
        }
    }

    #[test]
    fn representatives_are_connected_and_distinct() {
        let graphs = connected_graphs(5);
        for g in &graphs {
            assert!(ort_graphs::paths::is_connected(g));
            assert_eq!(g.node_count(), 5);
        }
        let mut sigs: Vec<String> =
            graphs.iter().map(|g| graph6::to_graph6(g).unwrap()).collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), graphs.len());
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(1).len(), 1);
    }
}
