//! Structure-aware snapshot fuzzing.
//!
//! Starting from a *valid* `snapshot::save` bitstream for every
//! [`SchemeKind`], the fuzzer applies the shared mutation engine
//! ([`crate::mutate`]) and asserts the failure contract: `load` either
//! rejects with a clean [`SchemeError`], or yields a scheme whose routing
//! attempts terminate with `Ok` or a clean
//! [`RouteFailure`](ort_routing::verify::RouteFailure) within the default
//! hop limit. Panics and unbounded loops are the bugs being hunted; any
//! panic aborts the run, which is exactly the signal CI needs.

use ort_bitio::BitVec;
use ort_graphs::{generators, Graph};
use ort_routing::snapshot::{load, save, SchemeKind};
use ort_routing::verify::{default_hop_limit, route_pair};

use crate::mutate::{mutate, Lcg};
use crate::registry::SchemeId;

/// Aggregate outcome of a fuzz campaign (everything observed is clean;
/// a panic would have aborted the process instead of being counted).
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Total mutated snapshots fed to `load`.
    pub mutations: usize,
    /// Mutations rejected at load time with a clean `SchemeError`.
    pub load_rejected: usize,
    /// Mutations that still loaded (corruption landed in don't-care bits
    /// or produced a different-but-well-formed scheme).
    pub loaded_ok: usize,
    /// Routing attempts on loaded mutants that ended in a clean
    /// `RouteFailure`.
    pub route_failures: usize,
    /// Routing attempts on loaded mutants that delivered.
    pub route_ok: usize,
}

impl FuzzOutcome {
    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: &FuzzOutcome) {
        self.mutations += other.mutations;
        self.load_rejected += other.load_rejected;
        self.loaded_ok += other.loaded_ok;
        self.route_failures += other.route_failures;
        self.route_ok += other.route_ok;
    }
}

/// Builds the pristine snapshot for `kind` on a fixed `G(n, 1/2)` sample.
///
/// # Errors
///
/// Propagates construction/serialization errors (a graph the scheme
/// refuses — callers pick `(n, seed)` the theorem schemes accept).
pub fn base_snapshot(
    kind: SchemeKind,
    n: usize,
    seed: u64,
) -> Result<BitVec, ort_routing::scheme::SchemeError> {
    let g = generators::gnp_half(n, seed);
    let id = SchemeId::from_snapshot_kind(kind).expect("registry covers all kinds");
    let scheme = id.build(&g)?;
    save(kind, scheme.as_ref())
}

/// Feeds `count` seeded mutations of `base` through `load` and, when the
/// mutant still loads, through a handful of routing attempts. Returns the
/// outcome tally; the contract is "no panic, no unbounded loop", which
/// this function proves by returning at all.
#[must_use]
pub fn fuzz_snapshot(base: &BitVec, count: usize, seed0: u64) -> FuzzOutcome {
    let mut out = FuzzOutcome::default();
    for i in 0..count {
        let (mutant, _kind) = mutate(base, seed0.wrapping_add(i as u64));
        out.mutations += 1;
        match load(&mutant) {
            Err(_) => out.load_rejected += 1,
            Ok(scheme) => {
                out.loaded_ok += 1;
                probe_loaded(scheme.as_ref(), seed0 ^ i as u64, &mut out);
            }
        }
    }
    out
}

/// Routes a few pairs through a loaded (possibly corrupted) scheme; every
/// attempt must terminate within the default hop limit.
fn probe_loaded(scheme: &dyn ort_routing::scheme::RoutingScheme, seed: u64, out: &mut FuzzOutcome) {
    let n = scheme.node_count();
    if n < 2 {
        return;
    }
    let limit = default_hop_limit(n);
    let mut rng = Lcg::new(seed);
    for _ in 0..4 {
        let s = rng.below(n);
        let t = rng.below(n);
        if s == t {
            continue;
        }
        match route_pair(scheme, s, t, limit) {
            Ok(_) => out.route_ok += 1,
            Err(_) => out.route_failures += 1,
        }
    }
}

/// Runs the full campaign: for every snapshot-capable kind, `per_kind`
/// mutations against a pristine snapshot of a `G(n, 1/2)` sample.
///
/// # Errors
///
/// Propagates a refusal to build the pristine base (choose `(n, seed)` on
/// which all schemes construct; the defaults in the `ort` driver do).
pub fn fuzz_all_kinds(
    n: usize,
    graph_seed: u64,
    per_kind: usize,
) -> Result<Vec<(SchemeKind, FuzzOutcome)>, ort_routing::scheme::SchemeError> {
    let mut results = Vec::new();
    for (idx, kind) in SchemeKind::ALL.into_iter().enumerate() {
        let base = base_snapshot(kind, n, graph_seed)?;
        let outcome = fuzz_snapshot(&base, per_kind, 0xC0FF_EE00 ^ idx as u64);
        results.push((kind, outcome));
    }
    Ok(results)
}

/// Sanity helper for tests: the unmutated base must load and route.
///
/// # Errors
///
/// Propagates load errors (none, for a valid snapshot).
pub fn roundtrip_base(base: &BitVec, g: &Graph) -> Result<(), ort_routing::scheme::SchemeError> {
    let scheme = load(base)?;
    let n = g.node_count();
    let limit = default_hop_limit(n);
    for t in 1..n.min(4) {
        route_pair(scheme.as_ref(), 0, t, limit).map_err(|f| {
            ort_routing::scheme::SchemeError::Precondition {
                reason: format!("pristine snapshot failed to route: {f}"),
            }
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_bases_route() {
        let g = generators::gnp_half(20, 11);
        for kind in SchemeKind::ALL {
            let base = base_snapshot(kind, 20, 11).unwrap();
            roundtrip_base(&base, &g).unwrap();
        }
    }

    #[test]
    fn small_fuzz_campaign_is_clean() {
        // 200 mutations per kind here; CI runs ≥ 10k via `ort conformance`.
        for (kind, out) in fuzz_all_kinds(20, 11, 200).unwrap() {
            assert_eq!(out.mutations, 200, "{kind:?}");
            assert_eq!(
                out.load_rejected + out.loaded_ok,
                out.mutations,
                "{kind:?}: every mutation must be accounted for"
            );
            // The container is tight: most corruptions must be caught at
            // load time rather than silently producing a scheme.
            assert!(out.load_rejected > out.mutations / 2, "{kind:?}: {out:?}");
        }
    }

    #[test]
    fn truncations_always_rejected() {
        let base = base_snapshot(SchemeKind::FullTable, 16, 3).unwrap();
        for cut in [0usize, 1, 8, 31, 32, 33, base.len() / 2, base.len() - 1] {
            let trunc = base.slice(0..cut);
            assert!(load(&trunc).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn giant_length_field_rejected_without_allocation() {
        use ort_bitio::{codes, BitWriter};
        // magic + version + kind, then an absurd node count: the loader
        // must reject before reserving capacity for 2^40 nodes.
        let mut w = BitWriter::new();
        w.write_bits(0x4F52_5453, 32).unwrap();
        codes::write_elias_gamma(&mut w, 1).unwrap();
        w.write_bits(0, 5).unwrap();
        codes::write_u64_selfdelim(&mut w, 1 << 40).unwrap();
        let bits = w.finish();
        assert!(load(&bits).is_err());
    }
}
