//! The cross-scheme differential oracle.
//!
//! On a given graph, every registered scheme ([`SchemeId::ALL`]) is built
//! and routed against the same [`DistanceOracle`] and the same
//! [`FullTableScheme`] reference, pair by pair:
//!
//! * the reference must deliver every pair in exactly the true distance
//!   (it is the trusted shortest-path baseline — if *it* disagrees with
//!   the APSP oracle, that is a finding in its own right);
//! * the scheme under test must deliver every pair the reference
//!   delivers, within its contractual hop cap
//!   ([`SchemeId::hop_cap`]) and never in fewer hops than the distance
//!   (beating APSP means the two disagree about the graph).
//!
//! Schemes may *refuse* a graph (the theorem constructions check their
//! Kolmogorov-randomness preconditions) — refusals are tallied, not
//! flagged: on random inputs the sweep asserts acceptance separately.

use ort_graphs::paths::{Apsp, DistanceOracle};
use ort_graphs::Graph;
use ort_routing::schemes::full_table::FullTableScheme;
use ort_routing::verify::{default_hop_limit, route_pair};

use crate::registry::SchemeId;

/// One cross-check violation: the scheme and the reference disagree, or a
/// contractual cap is broken.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Scheme that disagreed.
    pub scheme: &'static str,
    /// Source node.
    pub s: usize,
    /// Target node.
    pub t: usize,
    /// Human-readable description of the violation.
    pub what: String,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} ({}, {})] {}", self.scheme, self.s, self.t, self.what)
    }
}

/// Per-scheme tally for one graph.
#[derive(Debug, Clone)]
pub struct SchemeDiff {
    /// Which scheme.
    pub id: SchemeId,
    /// `None` when the scheme accepted the graph; the refusal reason
    /// otherwise.
    pub refusal: Option<String>,
    /// Ordered pairs routed.
    pub pairs: usize,
    /// Pairs delivered.
    pub delivered: usize,
    /// Worst hops/distance ratio over delivered pairs (distance ≥ 1).
    pub max_stretch: Option<f64>,
    /// Violations found (empty for a conforming scheme).
    pub disagreements: Vec<Disagreement>,
}

/// Differential result over one graph: the per-scheme tallies.
#[derive(Debug, Clone)]
pub struct GraphDiff {
    /// Node count of the graph.
    pub n: usize,
    /// Violations of the full-table reference itself against the APSP
    /// oracle (checked once, not per scheme).
    pub reference_disagreements: Vec<Disagreement>,
    /// Per-scheme outcomes, in [`SchemeId::ALL`] order.
    pub schemes: Vec<SchemeDiff>,
}

impl GraphDiff {
    /// All violations: the reference's plus every scheme's.
    #[must_use]
    pub fn disagreements(&self) -> Vec<&Disagreement> {
        self.reference_disagreements
            .iter()
            .chain(self.schemes.iter().flat_map(|s| s.disagreements.iter()))
            .collect()
    }
}

/// Runs the differential oracle over `g`, checking every registered scheme
/// against the full-table reference on every `stride`-sampled ordered
/// pair (`stride == 1` ⇒ all pairs, the exhaustive mode).
///
/// Disconnected graphs are rejected by every constructor, so the result
/// is all-refusals there; callers enumerate connected graphs.
#[must_use]
pub fn diff_graph(g: &Graph, stride: usize) -> GraphDiff {
    let n = g.node_count();
    let oracle: DistanceOracle = Apsp::compute(g).into_oracle();
    let stride = stride.max(1);
    let limit = default_hop_limit(n);
    // Pass 1: the trusted reference itself must agree with APSP on every
    // sampled pair — any slip here invalidates the cross-checks below.
    let mut reference_disagreements = Vec::new();
    let reference = FullTableScheme::build_with_oracle(g, &oracle).ok();
    if let Some(reference) = &reference {
        for s in 0..n {
            for t in 0..n {
                if s == t || (s + t) % stride != 0 {
                    continue;
                }
                let dist = oracle.distance(s, t).expect("connected graph");
                match route_pair(reference, s, t, limit) {
                    Ok(path) if (path.len() - 1) as u32 == dist => {}
                    Ok(path) => reference_disagreements.push(Disagreement {
                        scheme: "full-table-reference",
                        s,
                        t,
                        what: format!(
                            "reference took {} hops, APSP says {dist}",
                            path.len() - 1
                        ),
                    }),
                    Err(f) => reference_disagreements.push(Disagreement {
                        scheme: "full-table-reference",
                        s,
                        t,
                        what: format!("reference failed: {f}"),
                    }),
                }
            }
        }
    }
    // Pass 2: every registered scheme against the same oracle.
    let mut schemes = Vec::with_capacity(SchemeId::ALL.len());
    for id in SchemeId::ALL {
        let mut diff = SchemeDiff {
            id,
            refusal: None,
            pairs: 0,
            delivered: 0,
            max_stretch: None,
            disagreements: Vec::new(),
        };
        match id.build(g) {
            Err(e) => {
                // A refusal is legitimate here, but it is exactly the
                // kind of event a post-mortem wants context for.
                ort_telemetry::recorder::anomaly("scheme_refusal", id as u64, n as u64);
                diff.refusal = Some(e.to_string());
            }
            Ok(scheme) => {
                for s in 0..n {
                    for t in 0..n {
                        if s == t || (s + t) % stride != 0 {
                            continue;
                        }
                        diff.pairs += 1;
                        let dist = oracle.distance(s, t).expect("connected graph");
                        match route_pair(scheme.as_ref(), s, t, limit) {
                            Err(f) => diff.disagreements.push(Disagreement {
                                scheme: id.name(),
                                s,
                                t,
                                what: format!("route failed: {f}"),
                            }),
                            Ok(path) => {
                                let hops = (path.len() - 1) as u32;
                                diff.delivered += 1;
                                if dist > 0 {
                                    let stretch = f64::from(hops) / f64::from(dist);
                                    diff.max_stretch = Some(
                                        diff.max_stretch.map_or(stretch, |m| m.max(stretch)),
                                    );
                                }
                                if hops < dist {
                                    diff.disagreements.push(Disagreement {
                                        scheme: id.name(),
                                        s,
                                        t,
                                        what: format!(
                                            "{hops} hops beats the APSP distance {dist}"
                                        ),
                                    });
                                }
                                if let Some(cap) = id.hop_cap(n, dist) {
                                    if hops > cap {
                                        ort_telemetry::recorder::anomaly(
                                            "stretch_cap_breach",
                                            u64::from(hops),
                                            u64::from(cap),
                                        );
                                        diff.disagreements.push(Disagreement {
                                            scheme: id.name(),
                                            s,
                                            t,
                                            what: format!(
                                                "{hops} hops exceeds the cap {cap} (distance {dist})"
                                            ),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        schemes.push(diff);
    }
    GraphDiff { n, reference_disagreements, schemes }
}

/// Aggregated differential statistics for a set of graphs (one scheme).
#[derive(Debug, Clone, Default)]
pub struct SchemeAggregate {
    /// Graphs the scheme accepted.
    pub accepted: usize,
    /// Graphs the scheme refused (precondition/disconnected).
    pub refused: usize,
    /// Total ordered pairs routed.
    pub pairs: usize,
    /// Total pairs delivered.
    pub delivered: usize,
    /// Worst stretch seen.
    pub max_stretch: Option<f64>,
    /// Total violations.
    pub disagreements: usize,
}

/// Folds per-graph results into per-scheme aggregates, in
/// [`SchemeId::ALL`] order.
#[must_use]
pub fn aggregate(diffs: &[GraphDiff]) -> Vec<(SchemeId, SchemeAggregate)> {
    let mut out: Vec<(SchemeId, SchemeAggregate)> =
        SchemeId::ALL.iter().map(|&id| (id, SchemeAggregate::default())).collect();
    for gd in diffs {
        for sd in &gd.schemes {
            let slot = &mut out
                .iter_mut()
                .find(|(id, _)| *id == sd.id)
                .expect("ALL order")
                .1;
            if sd.refusal.is_some() {
                slot.refused += 1;
            } else {
                slot.accepted += 1;
            }
            slot.pairs += sd.pairs;
            slot.delivered += sd.delivered;
            slot.disagreements += sd.disagreements.len();
            if let Some(s) = sd.max_stretch {
                slot.max_stretch = Some(slot.max_stretch.map_or(s, |m| m.max(s)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ort_graphs::generators;

    #[test]
    fn random_graph_has_no_disagreements() {
        let g = generators::gnp_half(24, 2);
        let diff = diff_graph(&g, 1);
        assert!(diff.reference_disagreements.is_empty());
        for sd in &diff.schemes {
            assert!(
                sd.disagreements.is_empty(),
                "{}: {:?}",
                sd.id.name(),
                sd.disagreements.first()
            );
            if sd.refusal.is_none() {
                assert_eq!(sd.delivered, sd.pairs, "{}", sd.id.name());
            }
        }
    }

    #[test]
    fn small_cycle_checks_universal_schemes() {
        // C_5 violates the theorem preconditions (diameter 2) — those must
        // refuse; the universal schemes must conform.
        let g = generators::cycle(5);
        let diff = diff_graph(&g, 1);
        assert!(diff.reference_disagreements.is_empty());
        for sd in &diff.schemes {
            assert!(sd.disagreements.is_empty(), "{}", sd.id.name());
        }
        let ft = diff.schemes.iter().find(|s| s.id == SchemeId::FullTable).unwrap();
        assert!(ft.refusal.is_none());
        assert_eq!(ft.delivered, 20);
    }

    #[test]
    fn sampling_stride_reduces_pairs() {
        let g = generators::gnp_half(20, 4);
        let full = diff_graph(&g, 1);
        let sampled = diff_graph(&g, 3);
        let ft = |d: &GraphDiff| d.schemes.iter().find(|s| s.id == SchemeId::FullTable).unwrap().pairs;
        assert!(ft(&sampled) < ft(&full));
        assert!(ft(&sampled) > 0);
    }

    #[test]
    fn aggregate_folds_counts() {
        let diffs: Vec<GraphDiff> =
            [generators::cycle(4), generators::complete(4)].iter().map(|g| diff_graph(g, 1)).collect();
        let agg = aggregate(&diffs);
        let (_, ft) = agg.iter().find(|(id, _)| *id == SchemeId::FullTable).unwrap();
        assert_eq!(ft.accepted, 2);
        assert_eq!(ft.pairs, 24);
        assert_eq!(ft.disagreements, 0);
    }
}
