//! Conformance: distance-oracle contracts over the exhaustive corpus.
//!
//! Every connected graph on `n ≤ 6` nodes (up to isomorphism) is run
//! against all three oracle obligations:
//!
//! * **Exact oracles agree** — the banded streaming oracle must equal
//!   the full-matrix oracle on every pair, at every band granularity.
//! * **Approximate oracles stay inside their contract** — the landmark
//!   oracle's estimate must sit in `[d(u,v), d(u,v) + 2·min(r_u, r_v)]`
//!   and its lower bound must never exceed the true distance.
//! * **Exactness is advertised honestly** — `is_exact()` must be true
//!   precisely for the oracles whose answers are always the truth.

use ort_conformance::enumerate;
use ort_graphs::oracle::{BandedOracle, Distances, LandmarkOracle};
use ort_graphs::paths::Apsp;

#[test]
fn banded_oracle_is_exact_on_every_small_connected_graph() {
    for n in 2..=6 {
        for g in enumerate::connected_graphs(n) {
            let apsp = Apsp::compute(&g);
            assert!(apsp.is_exact());
            for band_rows in [1, 2, n] {
                let banded = BandedOracle::new(g.clone(), band_rows);
                assert!(banded.is_exact());
                for u in 0..n {
                    for v in 0..n {
                        assert_eq!(
                            banded.distance(u, v),
                            apsp.distance(u, v),
                            "band_rows={band_rows}, pair ({u}, {v}), n={n}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn landmark_oracle_contract_holds_on_every_small_connected_graph() {
    for n in 2..=6 {
        for g in enumerate::connected_graphs(n) {
            let apsp = Apsp::compute(&g);
            // Sweep landmark counts from a single landmark to all nodes;
            // at `count = n` the estimates must collapse to the truth.
            for count in 1..=n {
                let lo = LandmarkOracle::build_with_count(&g, 1, count);
                assert!(!lo.is_exact());
                for u in 0..n {
                    for v in 0..n {
                        let d = apsp.distance(u, v).expect("corpus graphs are connected");
                        let est = lo.distance(u, v).expect("connected ⇒ estimable");
                        let ru = lo.radius(u).expect("connected ⇒ a landmark is reachable");
                        let rv = lo.radius(v).expect("connected ⇒ a landmark is reachable");
                        let slack = 2 * ru.min(rv);
                        assert!(
                            est >= d && est <= d + slack,
                            "estimate {est} outside [{d}, {d} + {slack}] \
                             at ({u}, {v}), n={n}, count={count}"
                        );
                        assert!(lo.distance_lower_bound(u, v) <= d);
                        if count == n {
                            assert_eq!(est, d, "all-landmarks oracle must be exact-valued");
                        }
                    }
                }
            }
        }
    }
}
