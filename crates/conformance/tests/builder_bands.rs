//! Conformance: band-streaming scheme construction is byte-identical to
//! full-matrix construction.
//!
//! Every registered scheme now builds through [`SchemeId::build_with_dists`]
//! against any exact [`Distances`] implementation, and the banded streaming
//! oracle holds only one band of the distance matrix at a time. This
//! harness is the proof obligation for that refactor: across the
//! exhaustive small-graph corpus, seeded `G(n, 1/2)` and power-law graphs,
//! every band width, and every `ORT_THREADS` setting, the banded build
//! must equal the historical full-matrix build **byte for byte** — same
//! per-node bits, same labels, same snapshot bytes, same verification
//! report — and refusals must be the *same* [`SchemeError`].

use ort_conformance::enumerate;
use ort_conformance::registry::SchemeId;
use ort_graphs::generators;
use ort_graphs::oracle::BandedOracle;
use ort_graphs::paths::Apsp;
use ort_graphs::Graph;
use ort_routing::scheme::{RoutingScheme, SchemeError};
use ort_routing::snapshot;
use ort_routing::verify::verify_scheme_with_dists;

/// The band widths exercised per graph: degenerate one-row bands, the
/// production default (64), a multi-band mid-size, and the full matrix —
/// clamped to `n` and deduplicated.
fn band_widths(n: usize) -> Vec<usize> {
    let mut widths: Vec<usize> =
        [1usize, 2, 64, 256, n].iter().map(|&w| w.clamp(1, n.max(1))).collect();
    widths.sort_unstable();
    widths.dedup();
    widths
}

/// Asserts two successful builds are byte-identical: per-node bits,
/// labels, and (where the scheme supports persistence) snapshot bytes.
fn assert_bytes_identical(
    ctx: &str,
    id: SchemeId,
    reference: &dyn RoutingScheme,
    candidate: &dyn RoutingScheme,
) {
    let n = reference.node_count();
    assert_eq!(n, candidate.node_count(), "{ctx}: node count");
    for u in 0..n {
        assert_eq!(
            reference.node_bits(u),
            candidate.node_bits(u),
            "{ctx}: node {u} bits differ"
        );
        assert_eq!(
            reference.labeling().label_of(u),
            candidate.labeling().label_of(u),
            "{ctx}: node {u} label differs"
        );
    }
    if let Some(kind) = id.snapshot_kind() {
        let a = snapshot::save(kind, reference).expect("reference snapshot");
        let b = snapshot::save(kind, candidate).expect("candidate snapshot");
        assert_eq!(a, b, "{ctx}: snapshot bytes differ");
    }
}

/// Builds `id` every way — legacy full-matrix entry point, explicit
/// `Apsp` oracle, and banded at each width — and asserts all agree
/// (including refusals, which must be the same error).
fn check_graph(g: &Graph, label: &str) {
    let n = g.node_count();
    let apsp = Apsp::compute(g);
    for id in SchemeId::ALL {
        let reference = id.build(g);
        let via_apsp = id.build_with_dists(g, &apsp);
        match (&reference, &via_apsp) {
            (Ok(a), Ok(b)) => {
                assert_bytes_identical(&format!("{label}/{}/apsp", id.name()), id, &**a, &**b);
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{label}/{}: refusal differs", id.name()),
            _ => panic!(
                "{label}/{}: legacy {:?} vs apsp-dists {:?}",
                id.name(),
                reference.as_ref().map(|_| ()),
                via_apsp.as_ref().map(|_| ())
            ),
        }
        for band_rows in band_widths(n) {
            let ctx = format!("{label}/{}/band={band_rows}", id.name());
            let banded = BandedOracle::new(g.clone(), band_rows);
            let candidate = id.build_with_dists(g, &banded);
            match (&reference, &candidate) {
                (Ok(a), Ok(b)) => assert_bytes_identical(&ctx, id, &**a, &**b),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{ctx}: refusal differs"),
                _ => panic!(
                    "{ctx}: legacy {:?} vs banded {:?}",
                    reference.as_ref().map(|_| ()),
                    candidate.as_ref().map(|_| ())
                ),
            }
        }
    }
}

#[test]
fn banded_build_matches_full_matrix_on_exhaustive_corpus() {
    for n in 2..=6 {
        for (i, g) in enumerate::connected_graphs(n).iter().enumerate() {
            check_graph(g, &format!("n={n}#{i}"));
        }
    }
}

#[test]
fn banded_build_matches_full_matrix_on_seeded_random_graph() {
    check_graph(&generators::gnp_half(128, 1), "gnp128");
}

#[test]
fn banded_build_matches_full_matrix_on_sparse_graphs() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    check_graph(&generators::gnm(96, 96 * 3, &mut rng), "gnm96");
    check_graph(&generators::power_law_seeded(96, 2, 2.5, 1), "powerlaw96");
}

#[test]
fn banded_build_verifies_identically_to_full_matrix_build() {
    // Beyond raw bytes: the verification pipeline must see the two builds
    // as the same scheme — same deliveries, hops, worst pair, stretch.
    let g = generators::gnp_half(64, 4);
    let apsp = Apsp::compute(&g);
    let banded = BandedOracle::new(g.clone(), 5);
    for id in SchemeId::ALL {
        let reference = id.build(&g).expect("G(64,1/2) satisfies every precondition");
        let candidate = id.build_with_dists(&g, &banded).expect("banded build succeeds");
        let a = verify_scheme_with_dists(&g, &*reference, &apsp).unwrap();
        let b = verify_scheme_with_dists(&g, &*candidate, &apsp).unwrap();
        assert_eq!(a.delivered, b.delivered, "{}", id.name());
        assert_eq!(a.failures, b.failures, "{}", id.name());
        assert_eq!(a.stretches, b.stretches, "{}", id.name());
        assert_eq!(a.total_hops, b.total_hops, "{}", id.name());
        assert_eq!(a.worst, b.worst, "{}", id.name());
    }
}

#[test]
fn banded_build_is_deterministic_across_thread_counts() {
    // Byte-identity must also hold across `ORT_THREADS`: the banded
    // oracle computes bands with the parallel APSP engine, and the
    // project invariant is that artifact bytes never depend on the
    // worker count. Safe to set the env var here: even if another test
    // in this binary races the variable, every build below is asserted
    // equal to the same serial reference, so the assertion itself is
    // thread-count-invariant.
    let g = generators::gnp_half(64, 2);
    std::env::set_var("ORT_THREADS", "1");
    let reference: Vec<_> = SchemeId::ALL
        .iter()
        .map(|id| id.build(&g).expect("G(64,1/2) satisfies every precondition"))
        .collect();
    for threads in ["1", "2", "8"] {
        std::env::set_var("ORT_THREADS", threads);
        for (id, reference) in SchemeId::ALL.iter().zip(&reference) {
            for band_rows in [5, 64] {
                let banded = BandedOracle::new(g.clone(), band_rows);
                let candidate = id.build_with_dists(&g, &banded).expect("banded build");
                assert_bytes_identical(
                    &format!("threads={threads}/{}/band={band_rows}", id.name()),
                    *id,
                    &**reference,
                    &*candidate,
                );
            }
        }
    }
    std::env::remove_var("ORT_THREADS");
}

#[test]
fn approximate_oracle_is_refused_by_every_builder() {
    use ort_graphs::oracle::LandmarkOracle;
    let g = generators::gnp_half(32, 3);
    let lo = LandmarkOracle::build(&g, 4);
    for id in SchemeId::ALL {
        assert_eq!(
            id.build_with_dists(&g, &lo).err(),
            Some(SchemeError::ApproximateOracle { oracle: "approximate landmark oracle" }),
            "{} must refuse an approximate oracle",
            id.name()
        );
    }
}

#[test]
fn banded_build_stays_within_one_ascending_pass_per_band_sweep() {
    // The memory claim behind the refactor: an APSP-hungry builder walks
    // destinations in ascending order, so the oracle computes each band a
    // bounded number of times instead of thrashing. Landmark uses two
    // ascending passes; everything else at most one per sweep plus the
    // connectivity row.
    let g = generators::gnp_half(96, 6);
    let bands = 96usize.div_ceil(8) as u64;
    for (id, max_passes) in [
        (SchemeId::FullTable, 1),
        (SchemeId::FullInformation, 1),
        (SchemeId::MultiInterval, 1),
        (SchemeId::Landmark, 2),
    ] {
        let banded = BandedOracle::new(g.clone(), 8);
        id.build_with_dists(&g, &banded).expect("banded build");
        assert!(
            banded.bands_computed() <= max_passes * bands + 1,
            "{}: {} bands computed, cap {}",
            id.name(),
            banded.bands_computed(),
            max_passes * bands + 1
        );
    }
}
