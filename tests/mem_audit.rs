//! Analytic-vs-measured memory audits: every `peak_bytes` /
//! `heap_bytes` claim in the distance stack is pinned against the
//! instrumented allocator (`telemetry::alloc`). Each claim is a
//! *guaranteed lower bound* on the measured region peak — the structure
//! it describes really is allocated — and the measured peak must stay
//! within a small slack above it, so a claim that silently omits a
//! buffer (the bug class satellite 1 exists to catch) fails the upper
//! side and a claim that overstates fails the lower side.
//!
//! The allocator counters are process-global, so every test serialises
//! on one mutex and pins `ORT_THREADS=1`; this integration binary runs
//! in its own process, which makes the upper-bound (cap) assertions
//! safe — no sibling test binary can inflate the watermark.

#![cfg(feature = "alloc-telemetry")]

use std::sync::Mutex;

use optimal_routing_tables::graphs::delta::DeltaOracle;
use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::oracle::{BandedOracle, Distances, LandmarkOracle};
use optimal_routing_tables::graphs::paths::{Apsp, ApspEngine};
use optimal_routing_tables::telemetry::alloc;

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    std::env::set_var("ORT_THREADS", "1");
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Absolute headroom on every cap: allocator rounding, span/record
/// bookkeeping, and small scratch vectors the analytic models omit.
const ABS_SLACK: u64 = 256 * 1024;

/// `Apsp::heap_bytes()` plus the resolved engine's `scratch_bytes` is a
/// lower bound on the measured peak of a serial compute, and the
/// measured peak stays within 1.5× of it — for each concrete engine.
#[test]
fn apsp_heap_plus_scratch_bounds_measured_compute() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    // (graph, engine): sparse/Queue, dense/Bitset, large-sparse/Tiled.
    let cases = [
        (generators::power_law_seeded(192, 3, 2.5, 7), ApspEngine::Queue),
        (generators::gnp_half(192, 7), ApspEngine::Bitset),
        (generators::power_law_seeded(1200, 3, 2.5, 7), ApspEngine::Tiled),
    ];
    for (g, engine) in cases {
        let n = g.node_count();
        let region = alloc::mem_span("audit.apsp");
        let apsp = Apsp::compute_serial_with_engine(&g, engine);
        let rec = region.finish();
        let store = apsp.heap_bytes() as u64;
        let claim = store + engine.scratch_bytes(&g, n) as u64;
        assert!(
            rec.region_peak_bytes >= store,
            "{engine:?} n={n}: peak {} below the retained store {store}",
            rec.region_peak_bytes
        );
        let cap = (claim as f64 * 1.5) as u64 + ABS_SLACK;
        assert!(
            rec.region_peak_bytes <= cap,
            "{engine:?} n={n}: peak {} exceeds claim {claim} beyond slack (cap {cap})",
            rec.region_peak_bytes
        );
        // The store is retained: net allocation ≈ heap_bytes.
        assert!(rec.net_bytes >= 0 && rec.net_bytes as u64 >= store, "{engine:?} n={n}");
    }
}

/// `BandedOracle::peak_bytes` (one band at the compact cell width plus
/// engine scratch) brackets the measured peak of a full ascending sweep:
/// the sweep never holds two bands, so the measured peak stays within
/// the same 1.25× slack the bench gate enforces.
#[test]
fn banded_oracle_peak_bytes_brackets_a_full_sweep() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    let n = 1024;
    let band_rows = 256;
    let g = generators::power_law_seeded(n, 3, 2.5, 11);
    // Construction (graph clone) deliberately outside the region: the
    // claim covers band storage + scratch, not the adjacency copy.
    let oracle = BandedOracle::with_engine(g, band_rows, ApspEngine::Tiled);
    let claim = oracle.peak_bytes() as u64;
    let region = alloc::mem_span("audit.banded");
    let mut checksum = 0u64;
    for u in (0..n).step_by(band_rows) {
        checksum = checksum.wrapping_add(u64::from(oracle.distance(u, 0).expect("connected")));
    }
    let rec = region.finish();
    assert!(checksum > 0, "sweep must traverse real distances");
    assert!(
        rec.region_peak_bytes >= claim,
        "measured sweep peak {} below the analytic claim {claim}: \
         the claim overstates band or scratch storage",
        rec.region_peak_bytes
    );
    let cap = (claim as f64 * 1.25) as u64 + ABS_SLACK;
    assert!(
        rec.region_peak_bytes <= cap,
        "measured sweep peak {} exceeds claim {claim} beyond slack (cap {cap}): \
         more than one band (or an unaccounted buffer) was live",
        rec.region_peak_bytes
    );
    // One band must be dropped before the next is computed: the peak is
    // far below two bands plus scratch.
    let two_bands = 2 * claim;
    assert!(rec.region_peak_bytes < two_bands, "sweep held two bands at once");
}

/// `LandmarkOracle::peak_bytes` (distance rows + nearest-landmark index
/// plus landmark ids, all capacity-exact) is retained by construction:
/// measured net ≥ claim, and the build's peak stays within 3× — the BFS
/// frontier scratch per landmark is freed but counts toward the peak.
#[test]
fn landmark_oracle_peak_bytes_matches_retained_footprint() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    let g = generators::power_law_seeded(1024, 3, 2.5, 13);
    let region = alloc::mem_span("audit.landmark");
    let lo = LandmarkOracle::build(&g, 13);
    let rec = region.finish();
    let claim = lo.peak_bytes() as u64;
    assert!(claim > 0);
    assert!(
        rec.net_bytes >= 0 && rec.net_bytes as u64 >= claim,
        "retained {} below the analytic claim {claim}: the claim counts \
         capacity that was never allocated",
        rec.net_bytes
    );
    let cap = (claim as f64 * 3.0) as u64 + ABS_SLACK;
    assert!(
        rec.region_peak_bytes <= cap,
        "landmark build peak {} exceeds claim {claim} beyond slack (cap {cap})",
        rec.region_peak_bytes
    );
}

/// `DeltaOracle::peak_bytes` (full table + repair worklist scratch)
/// brackets the measured peak of construction plus an incremental
/// repair — the repair must reuse the claimed scratch, not allocate a
/// second table.
#[test]
fn delta_oracle_peak_bytes_covers_construction_and_repair() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    let g = generators::gnp_half(256, 17);
    let (u, v) = {
        let mut pick = None;
        'outer: for a in 0..256usize {
            for &b in g.neighbors(a) {
                if b > a {
                    pick = Some((a, b));
                    break 'outer;
                }
            }
        }
        pick.expect("G(256, 1/2) has an edge")
    };
    let region = alloc::mem_span("audit.delta");
    let mut oracle = DeltaOracle::new(g);
    let report = oracle.remove_edge(u, v).expect("repairable removal");
    let rec = region.finish();
    assert!(report.full_rebuild || report.rows_recomputed > 0 || report.dirty.is_empty());
    let claim = oracle.peak_bytes() as u64;
    assert!(
        rec.region_peak_bytes >= oracle.apsp().heap_bytes() as u64,
        "peak {} below the retained distance table",
        rec.region_peak_bytes
    );
    let cap = (claim as f64 * 1.5) as u64 + ABS_SLACK;
    assert!(
        rec.region_peak_bytes <= cap,
        "construction+repair peak {} exceeds claim {claim} beyond slack (cap {cap}): \
         repair allocated beyond the claimed worklist scratch",
        rec.region_peak_bytes
    );
}

/// `Apsp` as a `&dyn Distances` claims exactly its `heap_bytes`; the
/// store really is that large (measured net of a serial compute).
#[test]
fn apsp_as_distances_claims_exactly_its_heap() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    let g = generators::gnp_half(128, 19);
    let region = alloc::mem_span("audit.apsp_dyn");
    let apsp = Apsp::compute_serial(&g);
    let rec = region.finish();
    let dyn_oracle: &dyn Distances = &apsp;
    assert_eq!(dyn_oracle.peak_bytes(), apsp.heap_bytes());
    assert!(rec.net_bytes >= 0 && rec.net_bytes as u64 >= apsp.heap_bytes() as u64);
}

/// Exact counter round-trip: a 1 MiB allocation moves `live_bytes` by
/// exactly 1 MiB and dropping it restores the old count. Retries a few
/// times so a stray late free from an earlier pool cannot flake it.
#[test]
fn live_counter_round_trips_exactly() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    const SIZE: u64 = 1 << 20;
    let mut ok = false;
    for _ in 0..5 {
        let before = alloc::live_bytes();
        let buf = vec![0u8; SIZE as usize];
        let after = alloc::live_bytes();
        std::hint::black_box(&buf);
        drop(buf);
        let restored = alloc::live_bytes();
        if after == before + SIZE && restored == before {
            ok = true;
            break;
        }
    }
    assert!(ok, "1 MiB alloc/free must round-trip the live counter exactly");
}

/// The process high-water mark never decreases, and allocating past it
/// raises it by at least the overshoot.
#[test]
fn peak_is_monotone_and_tracks_overshoot() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    let p0 = alloc::peak_bytes();
    let headroom = (p0 - alloc::live_bytes()) as usize;
    let buf = vec![0u8; headroom + (1 << 20)];
    let p1 = alloc::peak_bytes();
    std::hint::black_box(&buf);
    assert!(p1 >= p0 + (1 << 20), "peak {p1} must exceed {p0} by the 1 MiB overshoot");
    drop(buf);
    assert!(alloc::peak_bytes() >= p1, "peak must never decrease");
}

/// Nested attribution: a child region's retained bytes are visible in
/// the parent's net, the parent's peak dominates the child's, and the
/// child measures exactly its own allocation.
#[test]
fn nested_mem_spans_attribute_to_parent() {
    let _serial = serial();
    if !alloc::installed() {
        return;
    }
    const A: usize = 256 * 1024;
    const B: usize = 512 * 1024;
    let parent = alloc::mem_span("audit.parent");
    let keep_a = vec![1u8; A];
    let child = alloc::mem_span("audit.child");
    let keep_b = vec![2u8; B];
    let child_rec = child.finish();
    let parent_rec = parent.finish();
    std::hint::black_box((&keep_a, &keep_b));

    assert_eq!(child_rec.depth, 1);
    assert_eq!(parent_rec.depth, 0);
    assert_eq!(child_rec.net_bytes, B as i64, "child retains exactly its own vec");
    assert_eq!(child_rec.region_peak_bytes, B as u64);
    // Parent: both vecs retained; the record push for the child may add
    // a few bookkeeping bytes on the parent's account, never the child's.
    assert!(parent_rec.net_bytes >= (A + B) as i64);
    assert!(parent_rec.net_bytes < (A + B + 16 * 1024) as i64);
    // Watermark propagation: the parent's peak dominates the child's.
    assert!(parent_rec.region_peak_bytes >= (A + B) as u64);
    assert!(parent_rec.region_peak_bytes >= child_rec.region_peak_bytes);
}
