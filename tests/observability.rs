//! The observability layer's integration contract: value-domain
//! histograms are thread-count invariant, the flight recorder replays
//! the same dump for the same seeded run, a forced bench-gate failure
//! writes a post-mortem through the `postmortem:` sink, and `ort
//! report` passes on the checked-in results yet fails — naming the
//! field — the moment a single digit drifts.
//!
//! Every in-process test mutates process-global state (the telemetry
//! registry, the recorder ring, `ORT_THREADS`), so they serialise on
//! one mutex instead of relying on the harness's thread-per-test
//! default.

#![cfg(feature = "telemetry")]

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use optimal_routing_tables::conformance::differential;
use optimal_routing_tables::conformance::registry::SchemeId;
use optimal_routing_tables::gate::{self, GateConfig};
use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::paths::Apsp;
use optimal_routing_tables::manifest;
use optimal_routing_tables::routing::accounting::BitBreakdown;
use optimal_routing_tables::routing::verify;
use optimal_routing_tables::telemetry as tel;
use optimal_routing_tables::telemetry::recorder;

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A scratch directory unique to this test binary invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ort-observability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The full value-domain histogram table — names, counts, sums and every
/// log bucket — is identical whether the instrumented work ran on 1, 2
/// or 8 worker threads. (Timing histograms are wall-clock and excluded,
/// exactly as the determinism gate excludes them.)
#[test]
fn value_histograms_are_thread_count_invariant() {
    let _serial = serial();
    let g = generators::gnp_half(48, 3);
    let mut tables: Vec<Vec<tel::HistData>> = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("ORT_THREADS", threads);
        tel::reset();
        let apsp = Apsp::compute(&g);
        let oracle = apsp.into_oracle();
        let scheme = SchemeId::Theorem1.build(&g).expect("theorem 1 on G(48, 1/2)");
        verify::verify_scheme_with_oracle(&g, scheme.as_ref(), &oracle).expect("verify");
        let _bits = BitBreakdown::of(scheme.as_ref());
        tables.push(tel::snapshot().hists.into_iter().filter(|h| !h.timing).collect());
    }
    std::env::remove_var("ORT_THREADS");

    let hops = tables[0].iter().find(|h| h.name == "verify.hops");
    assert!(hops.is_some_and(|h| h.count > 0), "verify must record hop counts, got {tables:?}");
    assert!(tables[0].iter().any(|h| h.name == "verify.stretch_x1000" && h.count > 0));
    assert!(tables[0].iter().any(|h| h.name == "accounting.bits_per_node" && h.count > 0));
    for (i, t) in tables.iter().enumerate().skip(1) {
        assert_eq!(
            &tables[0],
            t,
            "value histograms differ between 1 and {} threads",
            [1, 2, 8][i]
        );
    }
}

/// Projects a post-mortem dump to its deterministic part: masks the
/// `ns` timestamp on every event line, and on span events also the `b`
/// payload (a span's `b` is its elapsed nanoseconds — wall clock, like
/// `ns`). Anomaly and note payloads stay unmasked: they carry data.
fn mask_ns(dump: &str) -> String {
    let mut out = String::with_capacity(dump.len());
    for line in dump.lines() {
        let mut line = line.to_string();
        if let Some(at) = line.find(",\"ns\":") {
            line.truncate(at);
            line.push_str(",\"ns\":_}");
        }
        if line.contains("\"kind\":\"span\"") {
            if let (Some(b), Some(end)) = (line.find(",\"b\":"), line.find(",\"ns\":")) {
                line.replace_range(b..end, ",\"b\":_");
            }
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Running the same seeded differential pass twice produces the same
/// refusal anomalies and — with timestamps masked — byte-identical
/// post-mortem dumps. `C_9` has diameter 4, which the diameter-2 theorem schemes refuse,
/// so the run is guaranteed to trip the `scheme_refusal` trigger.
#[test]
fn recorder_dump_is_deterministic_on_seeded_refusal() {
    let _serial = serial();
    std::env::set_var("ORT_THREADS", "1");
    let g = generators::cycle(9);
    let mut anomaly_runs = Vec::new();
    let mut dumps = Vec::new();
    for _ in 0..2 {
        tel::reset();
        let _ = differential::diff_graph(&g, 1);
        let anomalies: Vec<(u64, &'static str, u64, u64)> = recorder::events()
            .iter()
            .filter(|e| e.kind == recorder::EventKind::Anomaly)
            .map(|e| (e.seq, e.label, e.a, e.b))
            .collect();
        anomaly_runs.push(anomalies);
        dumps.push(mask_ns(&recorder::dump_string("scheme_refusal")));
    }
    std::env::remove_var("ORT_THREADS");

    assert!(
        anomaly_runs[0].iter().any(|e| e.1 == "scheme_refusal"),
        "C_9 must trip at least one scheme refusal, got {:?}",
        anomaly_runs[0]
    );
    assert_eq!(anomaly_runs[0], anomaly_runs[1], "anomaly sequence must replay exactly");
    assert_eq!(dumps[0], dumps[1], "masked post-mortem dumps must be byte-identical");
    assert!(dumps[0].starts_with("{\"type\":\"postmortem\",\"trigger\":\"scheme_refusal\""));
}

/// Increments the first digit of the first integer after `key` in
/// `text` (9 wraps to 8 so the length never changes): a one-character
/// payload perturbation.
fn perturb_after(text: &str, key: &str) -> String {
    let at = text.find(key).unwrap_or_else(|| panic!("'{key}' not found in payload"));
    let digit_at = at
        + key.len()
        + text[at + key.len()..]
            .find(|c: char| c.is_ascii_digit())
            .expect("digit after key");
    let d = text.as_bytes()[digit_at] as char;
    let new = if d == '9' { '8' } else { (d as u8 + 1) as char };
    let mut s = String::with_capacity(text.len());
    s.push_str(&text[..digit_at]);
    s.push(new);
    s.push_str(&text[digit_at + 1..]);
    s
}

/// A forced bench-gate failure exits non-zero and appends a post-mortem
/// block — headed by the `bench_gate_failure` trigger — to the
/// `postmortem:` sink configured in `ORT_TELEMETRY`.
#[test]
fn bench_gate_failure_writes_a_postmortem() {
    let _serial = serial();
    let dir = scratch("gate");
    let baseline = dir.join("baseline.json");
    let cfg = GateConfig { sizes: vec![32], seed: 1, reps: 1, tolerance: 0.25 };
    gate::record(&cfg, baseline.to_str().unwrap()).expect("record tiny baseline");

    // One drifted bit: the first entry's total no longer matches what a
    // fresh deterministic measurement will produce.
    let text = std::fs::read_to_string(&baseline).expect("read baseline");
    std::fs::write(&baseline, perturb_after(&text, "\"total\": ")).expect("write perturbed");

    let postmortem = dir.join("postmortem.jsonl");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_ort"))
        .args(["bench-gate", "--baseline", baseline.to_str().unwrap()])
        .args(["--bench", "none", "--build", "none", "--churn", "none"])
        .env("ORT_TELEMETRY", format!("postmortem:{}", postmortem.display()))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn ort bench-gate");
    assert!(!status.success(), "a drifted baseline must fail the gate");

    let dump = std::fs::read_to_string(&postmortem).expect("post-mortem sink file must exist");
    assert!(dump.contains("\"type\":\"postmortem\""), "{dump}");
    assert!(dump.contains("\"trigger\":\"bench_gate_failure\""), "{dump}");
    assert!(dump.contains("\"kind\":\"anomaly\",\"label\":\"bench_gate_failure\""), "{dump}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Halves every `"measured_peak_bytes"` value in `text` — the baseline
/// now claims the recorded run used half the memory a fresh probe
/// measures, i.e. a 2× memory regression from the gate's viewpoint.
fn halve_measured(text: &str) -> String {
    let key = "\"measured_peak_bytes\": ";
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(at) = rest.find(key) {
        let val_at = at + key.len();
        out.push_str(&rest[..val_at]);
        let end = val_at
            + rest[val_at..].find(|c: char| !c.is_ascii_digit()).expect("number then delimiter");
        let v: u64 = rest[val_at..end].parse().expect("integer measured value");
        out.push_str(&(v / 2).to_string());
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

/// The memory gate end to end, in a separate process so the in-process
/// tests cannot inflate its watermark: `bench-gate --record` writes a
/// baseline whose `mem` section carries the measured probes; `bench-gate
/// --mem` passes against that truthful baseline (covering the one-band
/// cap and width-ratio upper bounds); and with the recorded
/// `measured_peak_bytes` halved — an injected 2× memory regression — the
/// gate fails non-zero and writes a post-mortem through the sink.
#[test]
fn mem_gate_flags_a_doubled_memory_footprint() {
    let _serial = serial();
    if !optimal_routing_tables::telemetry::alloc::installed() {
        return;
    }
    let dir = scratch("memgate");
    let baseline = dir.join("baseline.json");
    let cfg = GateConfig { sizes: vec![32], seed: 1, reps: 1, tolerance: 0.25 };
    gate::record(&cfg, baseline.to_str().unwrap()).expect("record tiny baseline with probes");
    let text = std::fs::read_to_string(&baseline).expect("read baseline");
    assert!(text.contains("\"mem\""), "recorded baseline must carry the mem section");

    let run = |base: &Path, postmortem: &Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_ort"))
            .args(["bench-gate", "--mem", "--baseline", base.to_str().unwrap()])
            .args(["--bench", "none", "--build", "none", "--churn", "none"])
            .env("ORT_TELEMETRY", format!("postmortem:{}", postmortem.display()))
            .env("ORT_THREADS", "1")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn ort bench-gate --mem")
    };

    assert!(
        run(&baseline, &dir.join("unused.jsonl")).success(),
        "a truthful baseline must pass the memory gate"
    );

    let halved = dir.join("halved.json");
    std::fs::write(&halved, halve_measured(&text)).expect("write halved baseline");
    let postmortem = dir.join("postmortem.jsonl");
    assert!(!run(&halved, &postmortem).success(), "a 2x memory regression must fail the gate");
    let dump = std::fs::read_to_string(&postmortem).expect("post-mortem sink file must exist");
    assert!(dump.contains("\"trigger\":\"bench_gate_failure\""), "{dump}");
    assert!(dump.contains("mem_regressed") || dump.contains("bench_gate_failure"), "{dump}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Copies the checked-in results corpus (every `*.json` except the
/// report itself, plus the run history) into `dir`.
fn copy_results(dir: &Path) {
    for entry in std::fs::read_dir("results").expect("results/ directory") {
        let p = entry.expect("dir entry").path();
        let name = p.file_name().unwrap().to_str().unwrap().to_string();
        if name == "REPORT.json" || !(name.ends_with(".json") || name == "HISTORY.jsonl") {
            continue;
        }
        std::fs::copy(&p, dir.join(&name)).expect("copy result file");
    }
}

/// Re-stamps `file` after a payload edit: recomputes the FNV digest over
/// the edited payload and substitutes it for `old` in both the file's
/// manifest and the history, so only the *content* drifts, not the
/// provenance chain. Returns the new digest.
fn restamp(dir: &Path, file: &str, old: &str) -> String {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path).expect("read result file");
    let (_, payload) =
        optimal_routing_tables::report::unstamp(&text).expect("stamped result file");
    let fresh = manifest::digest_of(&payload);
    std::fs::write(&path, text.replace(old, &fresh)).expect("rewrite digest");
    let hist_path = dir.join("HISTORY.jsonl");
    let history = std::fs::read_to_string(&hist_path).expect("read history");
    std::fs::write(&hist_path, history.replace(old, &fresh)).expect("rewrite history");
    fresh
}

fn digest_in(text: &str) -> String {
    let at = text.find("fnv64:").expect("digest in manifest");
    text[at..at + "fnv64:".len() + 16].to_string()
}

fn run_report(args: &[&str]) -> (bool, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ort"))
        .arg("report")
        .args(args)
        .stdout(std::process::Stdio::null())
        .output()
        .expect("spawn ort report");
    (out.status.success(), String::from_utf8_lossy(&out.stderr).into_owned())
}

/// The observatory end to end: `ort report` passes on a pristine copy
/// of the checked-in results; a one-character payload edit fails the
/// digest check naming the file; and once the file is re-stamped so its
/// provenance chain is self-consistent again, a baseline comparison
/// still fails — now naming the exact drifted field (a bench-gate bit
/// total and a shifted resilience histogram bucket).
#[test]
fn report_flags_single_character_drift() {
    let _serial = serial();
    let clean = scratch("report-clean");
    copy_results(&clean);
    let clean_report = clean.join("REPORT.json");
    let (ok, stderr) =
        run_report(&["--dir", clean.to_str().unwrap(), "--out", clean_report.to_str().unwrap()]);
    assert!(ok, "report must pass on the checked-in corpus:\n{stderr}");

    let drifted = scratch("report-drift");
    copy_results(&drifted);
    let baseline = drifted.join("TELEMETRY_BASELINE.json");
    let gate_text = std::fs::read_to_string(&baseline).expect("read gate baseline");
    let gate_digest = digest_in(&gate_text);
    std::fs::write(&baseline, perturb_after(&gate_text, "\"total\": ")).expect("perturb bits");
    let resilience = drifted.join("RESILIENCE.json");
    let res_text = std::fs::read_to_string(&resilience).expect("read resilience");
    let res_digest = digest_in(&res_text);
    std::fs::write(&resilience, perturb_after(&res_text, "\"buckets\": ")).expect("shift bucket");

    // Un-restamped, the edits are tampering: the digest check names both
    // files and explains that content and manifest disagree.
    let drift_report = drifted.join("REPORT.json");
    let (ok, stderr) =
        run_report(&["--dir", drifted.to_str().unwrap(), "--out", drift_report.to_str().unwrap()]);
    assert!(!ok, "a tampered payload must fail the report");
    assert!(stderr.contains("TELEMETRY_BASELINE.json") && stderr.contains("digest"), "{stderr}");
    assert!(stderr.contains("RESILIENCE.json"), "{stderr}");

    // Re-stamped, each file is internally consistent — only a cross-run
    // baseline comparison can see the drift, and it names the field.
    restamp(&drifted, "TELEMETRY_BASELINE.json", &gate_digest);
    restamp(&drifted, "RESILIENCE.json", &res_digest);
    let (ok, stderr) = run_report(&[
        "--dir",
        drifted.to_str().unwrap(),
        "--out",
        drift_report.to_str().unwrap(),
        "--baseline",
        clean_report.to_str().unwrap(),
    ]);
    assert!(!ok, "cross-run drift must fail against the clean baseline");
    assert!(stderr.contains("exact.bits_total."), "must name the drifted bit field:\n{stderr}");
    assert!(stderr.contains("exact.hist."), "must name the shifted histogram:\n{stderr}");
    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&drifted);
}
