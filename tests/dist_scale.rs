//! Cross-layer equivalence for the scaled distance layer: every engine
//! (queue / bitset / tiled, serial and threaded), every cell width
//! (u8 / u16 / u32), and both oracle modes (full matrix, banded
//! streaming) must agree with the queue-engine reference — byte for
//! byte — on the exhaustive small-graph corpus and on seeded large
//! graphs. The landmark oracle is approximate by design, so it is held
//! to its stretch contract instead of equality.
//!
//! CI runs this binary under the `ORT_THREADS` 1/2/8 matrix; the
//! threaded assertions here use the explicit `compute_with_threads`
//! entry point so the sweep inside one test cannot race the env var.

use optimal_routing_tables::conformance::enumerate;
use optimal_routing_tables::graphs::dist::{CellWidth, DistStore};
use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::oracle::{BandedOracle, Distances, LandmarkOracle};
use optimal_routing_tables::graphs::paths::{compute_band, Apsp, ApspEngine, UNREACHABLE};
use optimal_routing_tables::graphs::Graph;

/// The queue-engine full matrix — the reference every mode must match.
fn reference(g: &Graph) -> Vec<u32> {
    Apsp::compute_serial_with_engine(g, ApspEngine::Queue).matrix_u32()
}

fn assert_engine_matches(g: &Graph, reference: &[u32], engine: ApspEngine, what: &str) {
    let apsp = Apsp::compute_serial_with_engine(g, engine);
    assert_eq!(apsp.matrix_u32(), reference, "{what}: n={}", g.node_count());
}

fn assert_banded_matches(g: &Graph, reference: &[u32], band_rows: usize) {
    let n = g.node_count();
    let oracle = BandedOracle::new(g.clone(), band_rows);
    for u in 0..n {
        for v in 0..n {
            let want = match reference[u * n + v] {
                UNREACHABLE => None,
                d => Some(d),
            };
            assert_eq!(
                oracle.distance(u, v),
                want,
                "banded(band_rows={band_rows}) disagrees at ({u}, {v}), n={n}"
            );
        }
    }
}

/// Every cell width must round-trip the reference distances, including
/// the unreachable sentinel, through `DistStore` unchanged.
fn assert_stores_round_trip(reference: &[u32]) {
    for width in [CellWidth::U8, CellWidth::U16, CellWidth::U32] {
        let mut store = DistStore::unreachable(width, reference.len());
        for (i, &d) in reference.iter().enumerate() {
            if d != UNREACHABLE {
                store.set(i, d);
            }
        }
        for (i, &d) in reference.iter().enumerate() {
            assert_eq!(store.get(i), d, "{} store drifts at cell {i}", width.name());
        }
        assert_eq!(store.to_u32_vec(), reference);
    }
}

#[test]
fn every_engine_and_store_matches_queue_on_all_small_connected_graphs() {
    for n in 2..=6 {
        for g in enumerate::connected_graphs(n) {
            let reference = reference(&g);
            assert_engine_matches(&g, &reference, ApspEngine::Bitset, "bitset");
            assert_engine_matches(&g, &reference, ApspEngine::Tiled, "tiled");
            assert_stores_round_trip(&reference);
            for band_rows in [1, 2, n] {
                assert_banded_matches(&g, &reference, band_rows);
            }
        }
    }
}

#[test]
fn bands_tile_the_reference_matrix_exactly() {
    let g = generators::connected_gnp(90, 0.05, 11);
    let n = g.node_count();
    let reference = reference(&g);
    for engine in [ApspEngine::Queue, ApspEngine::Bitset, ApspEngine::Tiled] {
        let mut start = 0;
        while start < n {
            let rows = 17.min(n - start);
            let band = compute_band(&g, start, rows, engine);
            for u in start..start + rows {
                for v in 0..n {
                    let want = match reference[u * n + v] {
                        UNREACHABLE => None,
                        d => Some(d),
                    };
                    assert_eq!(band.distance(u, v), want, "{engine:?} band at ({u}, {v})");
                }
            }
            start += rows;
        }
    }
}

#[test]
fn engines_and_threads_match_on_seeded_gnp_128() {
    let g = generators::gnp_half(128, 7);
    let reference = reference(&g);
    assert_engine_matches(&g, &reference, ApspEngine::Bitset, "bitset");
    assert_engine_matches(&g, &reference, ApspEngine::Tiled, "tiled");
    #[cfg(feature = "parallel")]
    for threads in [1, 2, 8] {
        for engine in [ApspEngine::Bitset, ApspEngine::Tiled] {
            let apsp = Apsp::compute_with_threads(&g, engine, threads);
            assert_eq!(
                apsp.matrix_u32(),
                reference,
                "{engine:?} with {threads} threads drifts from the serial queue engine"
            );
        }
    }
    assert_banded_matches(&g, &reference, 10);
}

#[test]
fn engines_match_on_sparse_power_law_graphs() {
    for (n, gamma) in [(300, 2.5), (512, 3.0)] {
        let g = generators::power_law_seeded(n, 2, gamma, 3);
        let reference = reference(&g);
        assert_engine_matches(&g, &reference, ApspEngine::Tiled, "tiled");
        let full = Apsp::compute(&g);
        assert_eq!(full.matrix_u32(), reference, "default engine drifts at n={n}");
        let oracle = BandedOracle::with_engine(g.clone(), 64, ApspEngine::Tiled);
        for u in (0..n).step_by(37) {
            for v in (0..n).step_by(23) {
                assert_eq!(oracle.distance(u, v), full.distance(u, v));
            }
        }
    }
}

#[test]
fn landmark_oracle_honours_its_stretch_contract() {
    let graphs = [
        generators::gnp_half(48, 2),
        generators::grid(8, 9),
        generators::power_law_seeded(150, 2, 2.5, 5),
    ];
    for g in &graphs {
        let n = g.node_count();
        let apsp = Apsp::compute(g);
        let lo = LandmarkOracle::build(g, 9);
        assert!(!lo.is_exact(), "the landmark oracle must advertise approximation");
        for u in 0..n {
            for v in 0..n {
                let d = apsp.distance(u, v);
                let est = lo.distance(u, v);
                let Some(d) = d else {
                    continue;
                };
                let est = est.unwrap_or_else(|| {
                    panic!("landmark oracle lost a reachable pair ({u}, {v})")
                });
                let slack = 2 * lo.radius(u).unwrap_or(0).min(lo.radius(v).unwrap_or(0));
                assert!(
                    est >= d && est <= d + slack,
                    "estimate {est} outside [{d}, {d} + {slack}] at ({u}, {v}), n={n}"
                );
                assert!(lo.distance_lower_bound(u, v) <= d);
            }
        }
    }
}
