//! The tracing layer's integration contract: captured traces are
//! byte-identical at every worker count, the explainer's stretch
//! attribution reconciles exactly against the verifier for every registry
//! scheme, failed walks name a fault event the plan actually scheduled,
//! and an active recorder never perturbs the checked-in result files.
//!
//! Every test mutates process-global state (the installed recorder,
//! `ORT_THREADS`), so they serialise on one mutex instead of relying on
//! the harness's thread-per-test default.

#![cfg(feature = "telemetry")]

use std::sync::{Arc, Mutex};

use optimal_routing_tables::conformance::registry::SchemeId;
use optimal_routing_tables::conformance::report;
use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::paths::Apsp;
use optimal_routing_tables::graphs::ports::PortAssignment;
use optimal_routing_tables::routing::explain;
use optimal_routing_tables::routing::verify;
use optimal_routing_tables::simnet::faults::FaultPlan;
use optimal_routing_tables::simnet::resilience::resilience_hop_limit;
use optimal_routing_tables::simnet::Network;
use optimal_routing_tables::sweep;
use optimal_routing_tables::telemetry::trace::{self as trace_api, HopKind, TraceRecorder};

static LOCK: Mutex<()> = Mutex::new(());

/// The trace of a full verification pass is byte-identical whether the
/// verifier ran on 1, 2 or 8 worker threads: every event id is assigned
/// by the deterministic simulation, never by arrival order.
#[test]
fn traces_are_byte_identical_across_thread_counts() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let ambient = std::env::var("ORT_THREADS").ok();
    let g = generators::gnp_half(48, 3);
    let oracle = Apsp::compute(&g).into_oracle();
    let scheme = SchemeId::Theorem4
        .build_with_oracle(&g, &oracle)
        .expect("theorem 4 on G(48, 1/2)");

    let mut captures: Vec<String> = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("ORT_THREADS", threads);
        let recorder = TraceRecorder::unfiltered();
        {
            let _guard = trace_api::install(Arc::clone(&recorder));
            verify::verify_scheme_with_oracle(&g, scheme.as_ref(), &oracle).expect("verify");
        }
        assert!(recorder.event_count() > 0, "verification must be traced at {threads} threads");
        captures.push(format!("{:#?}", recorder.messages()));
    }
    match ambient {
        Some(v) => std::env::set_var("ORT_THREADS", v),
        None => std::env::remove_var("ORT_THREADS"),
    }

    assert_eq!(captures[0], captures[1], "trace differs between 1 and 2 threads");
    assert_eq!(captures[0], captures[2], "trace differs between 1 and 8 threads");
}

/// The acceptance criterion: for every scheme in the registry at n = 64,
/// every traced pair's attribution reconciles exactly, and the attributed
/// hop totals re-add to the verifier's independent count bit for bit.
#[test]
fn every_scheme_attribution_reconciles_at_n_64() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let n = 64;
    let g = generators::gnp_half(n, 1);
    let oracle = Apsp::compute(&g).into_oracle();

    for id in SchemeId::ALL {
        let scheme = id
            .build_with_oracle(&g, &oracle)
            .unwrap_or_else(|e| panic!("{} on G(64, 1/2): {e}", id.name()));
        let recorder = TraceRecorder::unfiltered();
        let report = {
            let _guard = trace_api::install(Arc::clone(&recorder));
            verify::verify_scheme_with_oracle(&g, scheme.as_ref(), &oracle).expect("verify")
        };
        let messages = recorder.messages();
        assert_eq!(messages.len(), n * (n - 1), "{} must trace every ordered pair", id.name());

        let mut attributed_hops = 0u64;
        let mut delivered = 0usize;
        for trace in &messages {
            let ex = explain::explain(&oracle, trace)
                .unwrap_or_else(|e| panic!("{}: {} -> {}: {e}", id.name(), trace.src, trace.dst));
            assert!(
                ex.reconciles(),
                "{}: attribution for {} -> {} does not reconcile",
                id.name(),
                trace.src,
                trace.dst
            );
            // For a delivered walk the telescoping sum is exact, so the
            // measured hop count is recoverable as distance + excess.
            if let Some(excess) = ex.delivered_excess() {
                attributed_hops += u64::from(ex.distance) + excess;
                delivered += 1;
            }
        }
        assert_eq!(delivered, report.delivered, "{}: delivery counts disagree", id.name());
        assert_eq!(
            attributed_hops,
            report.total_hops,
            "{}: attributed hops must re-add to the verifier's total exactly",
            id.name()
        );
    }
}

/// Every failed walk under a seeded fault load carries `Blocked` events,
/// and each one names a fault event the plan actually scheduled — never a
/// fault the per-hop check did not fire.
#[test]
fn failed_walks_name_a_scheduled_fault_event() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let n = 24;
    let g = generators::gnp_half(n, 5);
    let oracle = Apsp::compute(&g).into_oracle();
    let scheme = SchemeId::FullTable.build_with_oracle(&g, &oracle).expect("full table");
    let plan = FaultPlan::random_link_faults(&PortAssignment::sorted(&g), 0.3, 11);

    let recorder = TraceRecorder::unfiltered();
    let mut failed_sends = 0usize;
    {
        let _guard = trace_api::install(Arc::clone(&recorder));
        let mut net = Network::new(scheme.as_ref());
        net.set_hop_limit(resilience_hop_limit(n));
        net.set_fault_plan(plan.clone()).expect("plan fits the topology");
        for s in 0..n {
            for t in 0..n {
                if s != t && net.send(s, t).is_err() {
                    failed_sends += 1;
                }
            }
        }
    }

    let messages = recorder.messages();
    assert_eq!(messages.len(), n * (n - 1), "every send must be traced");
    let failed: Vec<_> = messages.iter().filter(|m| !m.delivered()).collect();
    assert_eq!(failed.len(), failed_sends, "trace and send outcomes disagree");
    assert!(!failed.is_empty(), "a 30% link-fault load must break at least one pair");

    for trace in failed {
        let mut blocked_events = 0usize;
        for e in trace.attempts.iter().flat_map(|a| &a.events) {
            if let HopKind::Blocked { next, fault, .. } = &e.kind {
                blocked_events += 1;
                let tf = plan.blocking_event(e.time, e.node, *next, *fault).unwrap_or_else(|| {
                    panic!(
                        "blocked hop {} -> {next} at t={} names no scheduled event",
                        e.node, e.time
                    )
                });
                assert!(!tf.event.to_string().is_empty());
            }
        }
        assert!(
            blocked_events > 0,
            "a failed full-table walk can only die on a vetoed hop ({} -> {})",
            trace.src,
            trace.dst
        );
        // The explainer surfaces the same veto for the diagnostics layer.
        let ex = explain::explain(&oracle, trace).expect("explain failed walk");
        assert!(ex.reconciles(), "failed walk {} -> {} must still reconcile", trace.src, trace.dst);
        let b = ex
            .attempts
            .iter()
            .find_map(|a| a.blocked.as_ref())
            .expect("explainer must surface the vetoed hop");
        assert!(plan.blocking_event(b.time, b.node, b.to, b.fault).is_some());
    }
}

/// Running the conformance suite and the resilience sweep with a trace
/// recorder installed produces reports byte-identical to the checked-in
/// snapshots: the recorder observes, it never perturbs. (The subprocess
/// half — active *sinks* — is tests/telemetry.rs; this is the in-process
/// half with an active *recorder*.)
#[test]
fn result_files_are_byte_identical_with_tracing_active() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let recorder = TraceRecorder::for_pair(0, 1);
    let _guard = trace_api::install(Arc::clone(&recorder));

    // The checked-in files carry a run manifest (stamped at write time);
    // the in-process payloads do not, so compare against the unstamped
    // payload — the manifest layer is covered by tests/results_schema.rs.
    let payload_of = |path: &str| {
        let text = std::fs::read_to_string(path).expect("checked-in report");
        optimal_routing_tables::report::unstamp(&text).expect("stamped report").1
    };

    let result = report::run(&report::Config::default(), |_| {}).expect("conformance suite");
    assert!(result.pass(), "conformance violations under tracing: {:?}", result.violations);
    let fresh = report::to_json(&result).pretty();
    assert_eq!(
        fresh,
        payload_of("results/CONFORMANCE.json"),
        "CONFORMANCE.json drifted under an active trace recorder"
    );

    let outcome = sweep::resilience_sweep(false, |_| {}).expect("resilience sweep");
    assert!(outcome.violations.is_empty(), "resilience violations: {:?}", outcome.violations);
    assert_eq!(
        outcome.report.pretty(),
        payload_of("results/RESILIENCE.json"),
        "RESILIENCE.json drifted under an active trace recorder"
    );
    let diagnostics = outcome.diagnostics.expect("telemetry is on, diagnostics must exist");
    assert_eq!(
        diagnostics.pretty(),
        payload_of("results/RESILIENCE_DIAGNOSTICS.json"),
        "RESILIENCE_DIAGNOSTICS.json drifted"
    );

    assert!(recorder.event_count() > 0, "the recorder must have observed the runs");
}
