//! Snapshot round-trip property: for every snapshot-capable scheme kind,
//! `save → load → verify` must reproduce the original scheme's behaviour
//! *exactly* — same deliveries, same failures, same per-pair hop counts.
//! The loaded router runs from decoded bits only, so any divergence means
//! the container format dropped or distorted state.
//!
//! This test must also pass under `--no-default-features` (serial build):
//! the snapshot bytes and the verification reports are engine-independent.

use optimal_routing_tables::conformance::registry::SchemeId;
use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::routing::snapshot::{self, SchemeKind};
use optimal_routing_tables::routing::verify::{verify_scheme, VerifyReport};

fn assert_reports_identical(kind: SchemeKind, a: &VerifyReport, b: &VerifyReport) {
    assert_eq!(a.delivered, b.delivered, "{kind:?}: delivered differs");
    assert_eq!(a.total_hops, b.total_hops, "{kind:?}: total_hops differs");
    assert_eq!(a.stretches, b.stretches, "{kind:?}: per-pair (hops, dist) differ");
    assert_eq!(
        a.failures.len(),
        b.failures.len(),
        "{kind:?}: failure count differs"
    );
    for ((s1, t1, _), (s2, t2, _)) in a.failures.iter().zip(&b.failures) {
        assert_eq!((s1, t1), (s2, t2), "{kind:?}: failing pairs differ");
    }
}

#[test]
fn every_kind_roundtrips_to_an_identical_report() {
    let n = 24;
    let seed = 11;
    let g = generators::gnp_half(n, seed);
    for kind in SchemeKind::ALL {
        let id = SchemeId::from_snapshot_kind(kind).expect("registry covers all kinds");
        let original = id
            .build(&g)
            .unwrap_or_else(|e| panic!("{kind:?} refused G({n},1/2) seed {seed}: {e}"));
        let bits = snapshot::save(kind, original.as_ref()).expect("save");
        let loaded = snapshot::load(&bits).expect("load");
        assert_eq!(loaded.node_count(), n, "{kind:?}: node count changed");

        let before = verify_scheme(&g, original.as_ref()).expect("verify original");
        let after = verify_scheme(&g, loaded.as_ref()).expect("verify loaded");
        assert_reports_identical(kind, &before, &after);
    }
}

#[test]
fn double_roundtrip_is_bit_stable() {
    // save(load(save(s))) == save(s): the container is canonical, so a
    // second trip through the codec cannot change a single bit.
    let g = generators::gnp_half(20, 3);
    for kind in SchemeKind::ALL {
        let id = SchemeId::from_snapshot_kind(kind).expect("registry covers all kinds");
        let scheme = id.build(&g).expect("build");
        let bits = snapshot::save(kind, scheme.as_ref()).expect("save");
        let loaded = snapshot::load(&bits).expect("load");
        let again = snapshot::save(kind, loaded.as_ref()).expect("re-save");
        assert_eq!(bits, again, "{kind:?}: snapshot not canonical");
    }
}
