//! The `ort trace --worst` oracle contract: one invocation — scheme
//! construction, worst-pair verification, and the hop-by-hop explanation —
//! costs exactly one APSP computation.
//!
//! Asserted via `ort_graphs::paths::apsp_compute_count`, a process-wide
//! counter — which is why this file holds exactly one test (see
//! crates/routing/tests/oracle_sharing.rs for the same convention): any
//! concurrently running test that computes an APSP would perturb the
//! delta. Integration-test files get their own process, so isolation is
//! guaranteed.

#![cfg(feature = "telemetry")]

use optimal_routing_tables::graphs::paths::apsp_compute_count;
use optimal_routing_tables::trace::{run_trace, TraceTarget};

#[test]
fn trace_worst_costs_exactly_one_apsp() {
    let before = apsp_compute_count();
    let out = run_trace("theorem4", 40, 3, TraceTarget::Worst).expect("trace run");
    assert_eq!(
        apsp_compute_count() - before,
        1,
        "build + worst-pair verify + explain must share one APSP"
    );
    assert!(out.contains("worst pair by stretch"), "{out}");
    assert!(out.contains("(reconciles)"), "{out}");

    // An explicit pair skips verification entirely yet still costs the
    // same single computation.
    let before = apsp_compute_count();
    run_trace("full-table", 24, 1, TraceTarget::Pair(0, 5)).expect("trace run");
    assert_eq!(apsp_compute_count() - before, 1);
}
