//! Schema guard for the checked-in results corpus: every `results/*.json`
//! parses with the project's own JSON parser, carries a manifest whose
//! schema/subcommand/digest fields are well-formed, and — the part a
//! parse alone cannot show — hashes back to exactly the digest its
//! manifest claims. A failure here means a results file was edited by
//! hand instead of regenerated.

use optimal_routing_tables::conformance::json::Json;
use optimal_routing_tables::manifest;
use optimal_routing_tables::report;

fn result_files() -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir("results")
        .expect("results/ directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "the results corpus must not be empty");
    files
}

#[test]
fn every_results_file_parses_and_is_stamped() {
    for path in result_files() {
        let name = path.file_name().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(&path).expect("read result file");
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));

        let m = doc.get("manifest").unwrap_or_else(|| panic!("{name}: missing manifest"));
        assert_eq!(
            m.get("schema").and_then(Json::as_i64),
            Some(manifest::SCHEMA_VERSION),
            "{name}: wrong or missing schema version"
        );
        let sub = m.get("subcommand").and_then(Json::as_str);
        assert!(sub.is_some_and(|s| !s.is_empty()), "{name}: missing subcommand");
        let digest = m.get("digest").and_then(Json::as_str).unwrap_or("");
        assert!(
            digest.starts_with("fnv64:") && digest.len() == "fnv64:".len() + 16,
            "{name}: malformed digest '{digest}'"
        );
    }
}

/// The digest chain holds: stripping the manifest block reconstructs the
/// payload byte-for-byte, and hashing it reproduces the manifest digest.
/// This is the same recomputation `ort report` performs per file.
#[test]
fn every_manifest_digest_matches_its_payload() {
    for path in result_files() {
        let name = path.file_name().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(&path).expect("read result file");
        let (m, payload) =
            report::unstamp(&text).unwrap_or_else(|| panic!("{name}: unstampable layout"));
        let claimed = m.get("digest").and_then(Json::as_str).unwrap_or("").to_string();
        assert_eq!(
            manifest::digest_of(&payload),
            claimed,
            "{name}: payload does not hash to the digest its manifest claims"
        );
    }
}

/// Volatile provenance: every machine- or feature-dependent payload
/// field — `host_cores`, and the allocator-measured `measured_peak_bytes`
/// lines the bench and gate docs carry — vanishes under
/// [`manifest::mask_volatile`], while the *analytic* figures
/// (`peak_bytes`, `claimed_peak_bytes`, `u32_full_bytes`) survive it.
/// This is exactly what keeps checked-in results byte-identical across
/// machines and across builds with instrumentation on or off.
#[test]
fn measured_memory_is_masked_but_analytic_claims_are_not() {
    let mut saw_measured = false;
    for path in result_files() {
        let name = path.file_name().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(&path).expect("read result file");
        let masked = manifest::mask_volatile(&text);
        assert!(!masked.contains("\"host_cores\":"), "{name}: host_cores survived masking");
        assert!(
            !masked.contains("\"measured_peak_bytes\":"),
            "{name}: a measured (machine-dependent) figure survived masking"
        );
        if text.contains("\"measured_peak_bytes\":") {
            saw_measured = true;
            assert!(
                text.contains("\"peak_bytes\":") || text.contains("\"claimed_peak_bytes\":"),
                "{name}: measured figures must ride next to the analytic claim they audit"
            );
            assert!(
                masked.contains("\"peak_bytes\":") || masked.contains("\"claimed_peak_bytes\":"),
                "{name}: masking must not strip the analytic peak_bytes claims"
            );
        }
    }
    assert!(saw_measured, "the corpus must carry at least one measured_peak_bytes audit line");
}

/// The history ledger ends in the truth: for every stamped results file
/// (the report excepted — it intentionally skips the ledger), the *last*
/// `HISTORY.jsonl` line for that file carries its current digest.
#[test]
fn history_last_lines_match_current_digests() {
    let history = std::fs::read_to_string("results/HISTORY.jsonl").expect("results/HISTORY.jsonl");
    for path in result_files() {
        let name = path.file_name().unwrap().to_str().unwrap();
        if name == "REPORT.json" {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read result file");
        let doc = Json::parse(&text).expect("parses (covered above)");
        let digest = doc
            .get("manifest")
            .and_then(|m| m.get("digest"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let last = history
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .rfind(|l| l.get("file").and_then(Json::as_str) == Some(name));
        let last = last.unwrap_or_else(|| panic!("{name}: no HISTORY.jsonl line"));
        assert_eq!(
            last.get("digest").and_then(Json::as_str),
            Some(digest.as_str()),
            "{name}: history's last word disagrees with the file's manifest"
        );
    }
}
