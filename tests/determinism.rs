//! Thread-count determinism: APSP and scheme verification must produce
//! byte-identical results whether they run on 1, 2 or 8 worker threads.
//! `ORT_THREADS` is read per call, so one test can sweep the matrix; the
//! test lives in its own integration binary so the env mutation cannot
//! race another test. CI additionally runs the whole suite under an
//! `ORT_THREADS` matrix (see `.github/workflows/ci.yml`).

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::paths::Apsp;
use optimal_routing_tables::routing::schemes::full_table::FullTableScheme;
use optimal_routing_tables::routing::schemes::theorem1::Theorem1Scheme;
use optimal_routing_tables::routing::verify::{verify_scheme_with_oracle, VerifyReport};

fn report_fingerprint(r: &VerifyReport) -> (usize, u64, Vec<(u32, u32)>, usize) {
    (r.delivered, r.total_hops, r.stretches.clone(), r.failures.len())
}

#[test]
fn apsp_and_verification_are_thread_count_invariant() {
    let g = generators::gnp_half(64, 5);

    let mut dist_matrices: Vec<Vec<u32>> = Vec::new();
    let mut ft_reports = Vec::new();
    let mut t1_reports = Vec::new();

    for threads in ["1", "2", "8"] {
        // `configured_threads()` re-reads the env var on every call, so
        // setting it here reconfigures the next compute/verify.
        std::env::set_var("ORT_THREADS", threads);

        let apsp = Apsp::compute(&g);
        dist_matrices.push(apsp.matrix_u32());
        let oracle = apsp.into_oracle();

        let ft = FullTableScheme::build_with_oracle(&g, &oracle).expect("full table");
        ft_reports.push(report_fingerprint(
            &verify_scheme_with_oracle(&g, &ft, &oracle).expect("verify full table"),
        ));

        let t1 = Theorem1Scheme::build(&g).expect("theorem 1 on G(64,1/2)");
        t1_reports.push(report_fingerprint(
            &verify_scheme_with_oracle(&g, &t1, &oracle).expect("verify theorem 1"),
        ));
    }
    std::env::remove_var("ORT_THREADS");

    for i in 1..dist_matrices.len() {
        assert_eq!(
            dist_matrices[0], dist_matrices[i],
            "APSP distance matrix differs between 1 and {} threads",
            [1, 2, 8][i]
        );
        assert_eq!(ft_reports[0], ft_reports[i], "full-table report differs");
        assert_eq!(t1_reports[0], t1_reports[i], "theorem-1 report differs");
    }
}
