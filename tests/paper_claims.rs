//! Integration tests asserting the paper's headline claims end-to-end:
//! every number comes from real bit strings routed through the simulator
//! or measured by the incompressibility machinery.

use optimal_routing_tables::graphs::random_props::RandomnessReport;
use optimal_routing_tables::graphs::{generators, paths::Apsp};
use optimal_routing_tables::kolmogorov::deficiency::CompressorSuite;
use optimal_routing_tables::routing::lower_bounds::{theorem6, theorem7, theorem8, theorem9};
use optimal_routing_tables::routing::model::{Knowledge, Model, Relabeling};
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::{
    full_information::FullInformationScheme, full_table::FullTableScheme,
    theorem1::Theorem1Scheme, theorem2::Theorem2Scheme, theorem3::Theorem3Scheme,
    theorem4::Theorem4Scheme, theorem5::Theorem5Scheme,
};
use optimal_routing_tables::routing::verify::verify_scheme;
use optimal_routing_tables::graphs::labels::Labeling;
use optimal_routing_tables::graphs::ports::PortAssignment;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 96;
const SEED: u64 = 2026;

#[test]
fn random_graphs_satisfy_the_lemmas() {
    // Lemmas 1–3 hold on G(n, 1/2) samples — the premise of every upper
    // bound.
    for seed in 0..4 {
        let g = generators::gnp_half(N, seed);
        let report = RandomnessReport::evaluate(&g, 3.0);
        assert!(report.all_hold(), "seed {seed}: {report:?}");
    }
    // And they are non-vacuous: structured graphs fail them.
    assert!(!RandomnessReport::evaluate(&generators::path(N), 3.0).all_hold());
}

#[test]
fn table1_upper_bound_ordering() {
    // The measured sizes must reproduce Table 1's ordering at a size past
    // the constant-factor crossovers.
    let n = 256;
    let g = generators::gnp_half(n, SEED);
    let mut rng = StdRng::seed_from_u64(5);
    let ia = FullTableScheme::build_with(
        &g,
        Model::new(Knowledge::PortsFixed, Relabeling::None),
        PortAssignment::adversarial(&g, &mut rng),
        Labeling::identity(n),
    )
    .unwrap();
    let ib = Theorem1Scheme::build_ib(&g).unwrap();
    let ii = Theorem1Scheme::build(&g).unwrap();
    let gamma = Theorem2Scheme::build(&g).unwrap();
    assert!(ia.total_size_bits() > ib.total_size_bits(), "IA∧α must dominate");
    assert!(ib.total_size_bits() > ii.total_size_bits(), "IB pays the neighbour vector");
    assert!(ii.total_size_bits() > gamma.total_size_bits(), "γ labels beat Θ(n²)");
    // Theorem 1 meets its stated bound.
    assert!(ii.total_size_bits() <= 6 * n * n);
}

#[test]
fn stretch_ladder_shrinks_space() {
    let g = generators::gnp_half(N, SEED);
    let t1 = Theorem1Scheme::build(&g).unwrap();
    let t3 = Theorem3Scheme::build(&g).unwrap();
    let t4 = Theorem4Scheme::build(&g).unwrap();
    let t5 = Theorem5Scheme::build(&g).unwrap();
    let sizes =
        [t1.total_size_bits(), t3.total_size_bits(), t4.total_size_bits(), t5.total_size_bits()];
    assert!(sizes.windows(2).all(|w| w[0] > w[1]), "sizes must strictly decrease: {sizes:?}");
    assert_eq!(sizes[3], 0, "Theorem 5 stores nothing");

    for (scheme, bound) in [
        (&t1 as &dyn RoutingScheme, 1.0),
        (&t3, 1.5),
        (&t4, 2.0),
        (&t5, 6.0 * (N as f64).log2()),
    ] {
        let report = verify_scheme(&g, scheme).unwrap();
        assert!(report.all_delivered());
        let s = report.max_stretch().unwrap();
        assert!(s <= bound, "stretch {s} > {bound}");
    }
}

#[test]
fn theorem6_floor_holds_for_every_node() {
    let g = generators::gnp_half(N, SEED);
    let suite = CompressorSuite::standard();
    let deficiency = suite.graph_deficiency(&g).max(0);
    let scheme = Theorem1Scheme::build(&g).unwrap();
    for u in 0..N {
        let acc = theorem6::analyze_node(&g, u, scheme.node_bits(u), deficiency).unwrap();
        assert!((acc.f_bits as i64) >= acc.implied_floor, "node {u}: {acc:?}");
        assert!(acc.codec_savings <= deficiency + 8, "node {u} beat incompressibility: {acc:?}");
    }
}

#[test]
fn theorem7_interconnection_reconstruction() {
    let g = generators::gnp_half(64, 3);
    let scheme = FullTableScheme::build_with(
        &g,
        Model::new(Knowledge::PortsFree, Relabeling::None),
        PortAssignment::sorted(&g),
        Labeling::identity(64),
    )
    .unwrap();
    let mut total_floor = 0i64;
    for u in 0..64 {
        let extra = theorem7::encode_interconnection(&scheme, u).unwrap();
        let decoded = theorem7::decode_interconnection(&scheme, u, &extra).unwrap();
        assert_eq!(decoded, g.neighbors(u).to_vec(), "node {u}");
        let acc = theorem7::analyze_node(&g, &scheme, u).unwrap();
        total_floor += acc.implied_floor();
    }
    // Ω(n²): the summed floors are a constant fraction of n².
    assert!(total_floor as f64 > 0.05 * (64.0 * 64.0), "total floor {total_floor}");
}

#[test]
fn theorem8_permutation_floor() {
    let g = generators::gnp_half(64, 4);
    let mut rng = StdRng::seed_from_u64(11);
    let scheme = FullTableScheme::build_with(
        &g,
        Model::new(Knowledge::PortsFixed, Relabeling::None),
        PortAssignment::adversarial(&g, &mut rng),
        Labeling::identity(64),
    )
    .unwrap();
    let accounting = theorem8::analyze(&g, &scheme).unwrap();
    let floor = theorem8::total_floor(&accounting) as f64;
    // Σ log d! ≈ n (n/2) log(n/2): a constant fraction of n² log n.
    // log₂(32!) ≈ 118 per node → ratio to n² log n ≈ 0.3 at n = 64
    // (approaching 1/2 as n grows).
    let scale = (64.0f64 * 64.0) * 64.0f64.log2();
    assert!(floor > 0.25 * scale, "floor {floor} vs scale {scale}");
    for a in &accounting {
        assert!(a.f_bits >= a.permutation_bits, "{a:?}");
    }
}

#[test]
fn theorem9_worst_case_extraction() {
    let report = theorem9::run(24, SEED, |g| FullTableScheme::build(g).unwrap()).unwrap();
    // ⌈log 24!⌉ = 80 bits; measured routing functions must carry at least
    // that much.
    assert!(report.permutation_bits >= 79);
    for &f in &report.bottom_f_bits {
        assert!(f >= report.permutation_bits);
    }
}

#[test]
fn full_information_is_cubic_and_optimal_in_shape() {
    let g = generators::gnp_half(64, 9);
    let fi = FullInformationScheme::build(&g).unwrap();
    let total = fi.total_size_bits() as f64;
    let cubed = (64.0f64).powi(3);
    assert!(total > 0.15 * cubed && total < 0.35 * cubed, "Θ(n³): {total}");
    // Every node's F equals its Theorem-10 block exactly.
    for u in (0..64).step_by(11) {
        let acc = optimal_routing_tables::routing::lower_bounds::theorem10::analyze_node(
            &g,
            u,
            fi.node_bits(u),
        )
        .unwrap();
        assert_eq!(acc.f_bits, acc.block_bits);
    }
}

#[test]
fn deficiency_separates_random_from_structured() {
    let suite = CompressorSuite::standard();
    let random = suite.graph_deficiency(&generators::gnp_half(N, 1));
    let structured = suite.graph_deficiency(&generators::gb_graph(N / 3));
    assert!(random < 200, "random deficiency {random}");
    assert!(structured > (N * N / 8) as i64, "G_B deficiency {structured}");
}

#[test]
fn diameter_two_is_the_regime() {
    // All the upper-bound schemes rely on diameter 2; confirm on the
    // workload and confirm the verifier agrees with APSP.
    let g = generators::gnp_half(N, SEED);
    assert_eq!(Apsp::compute(&g).diameter(), Some(2));
}
