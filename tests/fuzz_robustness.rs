//! Fuzz-style robustness tests: corrupted or random bit streams fed to
//! every decoder must produce clean errors (or wrong-but-well-formed
//! graphs/routes), never panics. This matters because the lower-bound
//! experiments *intentionally* run decoders over adversarial content.
//!
//! The noise and corruption here come from the conformance crate's shared
//! mutation engine (`conformance::mutate`), the same one `ort conformance`
//! drives for ≥ 10k snapshot mutations in CI — one engine, one seed
//! discipline, reproducible failures everywhere.

use proptest::prelude::*;

use optimal_routing_tables::bitio::BitReader;
use optimal_routing_tables::conformance::mutate::{mutate, random_bits};
use optimal_routing_tables::graphs::{generators, Graph};
use optimal_routing_tables::kolmogorov::codecs::{lemma1, lemma2, lemma3};
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::theorem1::Theorem1Scheme;
use optimal_routing_tables::routing::verify::verify_scheme;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn codec_decoders_never_panic_on_noise(seed in any::<u64>(), len in 0usize..2000) {
        let bits = random_bits(seed, len);
        let n = 24;
        // Any result is fine; panicking is not.
        let _ = lemma1::decode(&bits, n);
        let _ = lemma2::decode(&bits, n);
        let _ = lemma3::decode(&bits, n, 3);
        let _ = Graph::from_edge_bits(n, &bits);
    }

    #[test]
    fn codec_decoders_never_panic_on_mutants(seed in any::<u64>()) {
        // Start from *valid* encodings and run the structure-aware mutation
        // engine over them — truncations, bursts and length-field flips are
        // the adversarial cases closest to passing validation.
        let g = generators::connected_gnp(30, 0.12, seed % 100);
        if let Some((u, v)) = lemma2::find_distant_pair(&g) {
            let enc = lemma2::encode(&g, u, v).unwrap();
            for i in 0..24 {
                let (bad, _) = mutate(&enc, seed.wrapping_add(i));
                let _ = lemma2::decode(&bad, 30);
            }
        }
        let enc = lemma1::encode(&g, 3).unwrap();
        for i in 0..24 {
            let (bad, _) = mutate(&enc, seed.wrapping_add(1000 + i));
            let _ = lemma1::decode(&bad, 30);
        }
    }

    #[test]
    fn corrupted_routing_tables_fail_cleanly(seed in any::<u64>(), mseed in any::<u64>()) {
        let g = generators::gnp_half(32, seed % 50);
        let Ok(mut scheme) = Theorem1Scheme::build(&g) else { return Ok(()); };
        // Mutate one node's table via the public clone-and-rebuild path:
        // re-verify must complete without panicking, reporting either
        // success (mutation landed in don't-care bits) or failures.
        let victim = (mseed % 32) as usize;
        let bits = scheme.node_bits(victim).clone();
        if bits.is_empty() { return Ok(()); }
        let (corrupted, _) = mutate(&bits, mseed);
        scheme.replace_node_bits(victim, corrupted);
        let report = verify_scheme(&g, &scheme).unwrap();
        // Either everything still works (rare) or failures are reported.
        let _ = report.all_delivered();
    }

    #[test]
    fn bitreader_seek_and_read_are_total(seed in any::<u64>(), len in 0usize..256) {
        let bits = random_bits(seed, len);
        let mut r = BitReader::new(&bits);
        let _ = r.seek(len / 2);
        let _ = r.read_bits(((seed % 70) as u32).min(64));
        let _ = r.read_unary();
        let _ = optimal_routing_tables::bitio::codes::read_elias_gamma(&mut r);
        let _ = optimal_routing_tables::bitio::codes::read_elias_delta(&mut r);
        let _ = optimal_routing_tables::bitio::codes::read_selfdelim_prime(&mut r);
    }
}
