//! Fuzz-style robustness tests: corrupted or random bit streams fed to
//! every decoder must produce clean errors (or wrong-but-well-formed
//! graphs/routes), never panics. This matters because the lower-bound
//! experiments *intentionally* run decoders over adversarial content.

use proptest::prelude::*;

use optimal_routing_tables::bitio::{BitReader, BitVec};
use optimal_routing_tables::graphs::{generators, Graph};
use optimal_routing_tables::kolmogorov::codecs::{lemma1, lemma2, lemma3};
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::theorem1::Theorem1Scheme;
use optimal_routing_tables::routing::verify::verify_scheme;

fn random_bits(seed: u64, len: usize) -> BitVec {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1442695040888963407);
            (state >> 63) & 1 == 1
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn codec_decoders_never_panic_on_noise(seed in any::<u64>(), len in 0usize..2000) {
        let bits = random_bits(seed, len);
        let n = 24;
        // Any result is fine; panicking is not.
        let _ = lemma1::decode(&bits, n);
        let _ = lemma2::decode(&bits, n);
        let _ = lemma3::decode(&bits, n, 3);
        let _ = Graph::from_edge_bits(n, &bits);
    }

    #[test]
    fn codec_decoders_never_panic_on_bitflips(seed in any::<u64>()) {
        // Start from a *valid* encoding and flip one bit — the adversarial
        // case closest to passing validation.
        let g = generators::connected_gnp(30, 0.12, seed % 100);
        if let Some((u, v)) = lemma2::find_distant_pair(&g) {
            let enc = lemma2::encode(&g, u, v).unwrap();
            for i in (0..enc.len()).step_by(17) {
                let mut bad = enc.clone();
                bad.set(i, !bad.get(i).unwrap());
                let _ = lemma2::decode(&bad, 30);
            }
        }
        let enc = lemma1::encode(&g, 3).unwrap();
        for i in (0..enc.len()).step_by(13) {
            let mut bad = enc.clone();
            bad.set(i, !bad.get(i).unwrap());
            let _ = lemma1::decode(&bad, 30);
        }
    }

    #[test]
    fn corrupted_routing_tables_fail_cleanly(seed in any::<u64>(), flip in any::<u64>()) {
        let g = generators::gnp_half(32, seed % 50);
        let Ok(mut scheme) = Theorem1Scheme::build(&g) else { return Ok(()); };
        // Flip one bit in one node's table via the public clone-and-rebuild
        // path: re-verify must complete without panicking, reporting either
        // success (bit was in table-2 padding) or failures.
        let victim = (flip % 32) as usize;
        let bits = scheme.node_bits(victim).clone();
        if bits.is_empty() { return Ok(()); }
        let pos = (flip as usize / 32) % bits.len();
        let mut corrupted = bits.clone();
        corrupted.set(pos, !corrupted.get(pos).unwrap());
        scheme.replace_node_bits(victim, corrupted);
        let report = verify_scheme(&g, &scheme).unwrap();
        // Either everything still works (rare) or failures are reported.
        let _ = report.all_delivered();
    }

    #[test]
    fn bitreader_seek_and_read_are_total(seed in any::<u64>(), len in 0usize..256) {
        let bits = random_bits(seed, len);
        let mut r = BitReader::new(&bits);
        let _ = r.seek(len / 2);
        let _ = r.read_bits(((seed % 70) as u32).min(64));
        let _ = r.read_unary();
        let _ = optimal_routing_tables::bitio::codes::read_elias_gamma(&mut r);
        let _ = optimal_routing_tables::bitio::codes::read_elias_delta(&mut r);
        let _ = optimal_routing_tables::bitio::codes::read_selfdelim_prime(&mut r);
    }
}
