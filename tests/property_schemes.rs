//! Property-based integration tests: across random seeds and sizes, every
//! scheme that accepts a graph must deliver everywhere within its stretch
//! bound, from decoded bits alone.

use proptest::prelude::*;

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::ports::PortAssignment;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::{
    full_information::FullInformationScheme, full_table::FullTableScheme,
    ia_compact::IaCompactScheme, interval::IntervalScheme, landmark::LandmarkScheme,
    multi_interval::MultiIntervalScheme, theorem1::Theorem1Scheme, theorem2::Theorem2Scheme,
    theorem3::Theorem3Scheme, theorem4::Theorem4Scheme, theorem5::Theorem5Scheme,
};
use optimal_routing_tables::routing::verify::verify_scheme;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn theorem_schemes_respect_their_stretch_bounds(seed in any::<u64>(), n in 24usize..56) {
        let g = generators::gnp_half(n, seed);
        // Small random graphs occasionally violate the diameter-2 /
        // Lemma 3 preconditions; constructors must then refuse rather than
        // misroute. When they accept, the bound must hold.
        if let Ok(s) = Theorem1Scheme::build(&g) {
            let r = verify_scheme(&g, &s).unwrap();
            prop_assert!(r.is_shortest_path());
        }
        if let Ok(s) = Theorem1Scheme::build_ib(&g) {
            // Model IB: the interconnection vector rides along, but routing
            // must stay shortest-path.
            let r = verify_scheme(&g, &s).unwrap();
            prop_assert!(r.is_shortest_path());
        }
        if let Ok(s) = IaCompactScheme::build(&g, PortAssignment::sorted(&g)) {
            // IA ∧ α: fixed port assignment, Theorem 8's constant — still
            // exact shortest paths when the precondition holds.
            let r = verify_scheme(&g, &s).unwrap();
            prop_assert!(r.is_shortest_path());
        }
        if let Ok(s) = Theorem3Scheme::build(&g) {
            let r = verify_scheme(&g, &s).unwrap();
            prop_assert!(r.all_delivered());
            prop_assert!(r.max_stretch().unwrap() <= 1.5);
        }
        if let Ok(s) = Theorem4Scheme::build(&g) {
            let r = verify_scheme(&g, &s).unwrap();
            prop_assert!(r.all_delivered());
            prop_assert!(r.max_stretch().unwrap() <= 2.0);
        }
        if let Ok(s) = Theorem5Scheme::build(&g) {
            let r = verify_scheme(&g, &s).unwrap();
            prop_assert!(r.all_delivered());
            prop_assert!(r.max_stretch().unwrap() <= s.probe_budget() as f64);
        }
        if let Ok(s) = Theorem2Scheme::build(&g) {
            let r = verify_scheme(&g, &s).unwrap();
            prop_assert!(r.is_shortest_path());
        }
    }

    #[test]
    fn universal_schemes_work_on_arbitrary_connected_graphs(
        seed in any::<u64>(),
        n in 8usize..32,
        p in 0.15f64..0.9,
    ) {
        let g = generators::connected_gnp(n, p, seed % 1000);
        let ft = FullTableScheme::build(&g).unwrap();
        prop_assert!(verify_scheme(&g, &ft).unwrap().is_shortest_path());

        let fi = FullInformationScheme::build(&g).unwrap();
        prop_assert!(verify_scheme(&g, &fi).unwrap().is_shortest_path());

        let iv = IntervalScheme::build(&g).unwrap();
        prop_assert!(verify_scheme(&g, &iv).unwrap().all_delivered());

        let mi = MultiIntervalScheme::build(&g).unwrap();
        prop_assert!(verify_scheme(&g, &mi).unwrap().is_shortest_path());

        let lm = LandmarkScheme::build(&g, seed).unwrap();
        prop_assert!(verify_scheme(&g, &lm).unwrap().all_delivered());
    }

    #[test]
    fn banded_build_equals_full_width_build(
        seed in any::<u64>(),
        n in 8usize..40,
        band in 1usize..48,
    ) {
        // The band-streaming construction contract, sampled: at any band
        // width, every registry scheme must produce byte-for-byte the
        // scheme the full-width (whole-matrix-resident) oracle produces —
        // including identical refusals.
        use optimal_routing_tables::conformance::registry::SchemeId;
        use optimal_routing_tables::graphs::oracle::BandedOracle;
        let g = generators::connected_gnp(n, 0.4, seed % 1000);
        let band = band.min(n);
        let full = BandedOracle::new(g.clone(), n);
        let banded = BandedOracle::new(g.clone(), band);
        for id in SchemeId::ALL {
            match (id.build_with_dists(&g, &full), id.build_with_dists(&g, &banded)) {
                (Ok(a), Ok(b)) => {
                    for u in 0..n {
                        prop_assert_eq!(
                            a.node_bits(u),
                            b.node_bits(u),
                            "scheme {} at band width {}: node {} bits differ",
                            id.name(),
                            band,
                            u
                        );
                    }
                }
                (Err(ea), Err(eb)) => prop_assert_eq!(
                    ea,
                    eb,
                    "scheme {} at band width {}: refusal differs",
                    id.name(),
                    band
                ),
                (a, b) => prop_assert!(
                    false,
                    "scheme {} at band width {}: acceptance differs (full {:?}, banded {:?})",
                    id.name(),
                    band,
                    a.map(|_| ()),
                    b.map(|_| ())
                ),
            }
        }
    }

    #[test]
    fn sizes_are_reproducible_and_bit_exact(seed in any::<u64>()) {
        // Building the same scheme twice yields identical bit strings —
        // the encodings are canonical, with no hidden nondeterminism.
        let g = generators::gnp_half(32, seed);
        if let (Ok(a), Ok(b)) = (Theorem1Scheme::build(&g), Theorem1Scheme::build(&g)) {
            for u in 0..32 {
                prop_assert_eq!(a.node_bits(u), b.node_bits(u));
            }
            prop_assert_eq!(a.total_size_bits(), b.total_size_bits());
        }
    }

    #[test]
    fn theorem1_size_bound_holds_across_seeds(seed in any::<u64>()) {
        let n = 64usize;
        let g = generators::gnp_half(n, seed);
        if let Ok(s) = Theorem1Scheme::build(&g) {
            for u in 0..n {
                prop_assert!(s.node_size_bits(u) <= 6 * n, "node {} has {} bits", u, s.node_size_bits(u));
            }
        }
    }
}
