//! Integration tests running every scheme through the message-passing
//! simulator — schemes and simulator are separate crates, so this is the
//! full decode-bits-then-route loop a deployment would run.

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::paths::Apsp;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::{
    full_information::FullInformationScheme, full_table::FullTableScheme,
    interval::IntervalScheme, landmark::LandmarkScheme, multi_interval::MultiIntervalScheme,
    theorem1::Theorem1Scheme, theorem2::Theorem2Scheme, theorem3::Theorem3Scheme,
    theorem4::Theorem4Scheme, theorem5::Theorem5Scheme,
};
use optimal_routing_tables::simnet::{Network, SimError};

const N: usize = 48;
const SEED: u64 = 77;

fn all_schemes(g: &optimal_routing_tables::graphs::Graph) -> Vec<(&'static str, Box<dyn RoutingScheme>)> {
    vec![
        ("full_table", Box::new(FullTableScheme::build(g).unwrap())),
        ("theorem1", Box::new(Theorem1Scheme::build(g).unwrap())),
        ("theorem1_ib", Box::new(Theorem1Scheme::build_ib(g).unwrap())),
        ("theorem2", Box::new(Theorem2Scheme::build(g).unwrap())),
        ("theorem3", Box::new(Theorem3Scheme::build(g).unwrap())),
        ("theorem4", Box::new(Theorem4Scheme::build(g).unwrap())),
        ("theorem5", Box::new(Theorem5Scheme::build(g).unwrap())),
        ("full_information", Box::new(FullInformationScheme::build(g).unwrap())),
        ("interval", Box::new(IntervalScheme::build(g).unwrap())),
        ("multi_interval", Box::new(MultiIntervalScheme::build(g).unwrap())),
        ("landmark", Box::new(LandmarkScheme::build(g, 5).unwrap())),
    ]
}

#[test]
fn every_scheme_delivers_all_pairs_through_the_simulator() {
    let g = generators::gnp_half(N, SEED);
    for (name, scheme) in all_schemes(&g) {
        let mut net = Network::new(scheme.as_ref());
        let (ok, bad) = net.send_all_pairs();
        assert_eq!(bad, 0, "{name}: {bad} failures");
        assert_eq!(ok as usize, N * (N - 1), "{name}");
    }
}

#[test]
fn shortest_path_schemes_agree_with_apsp_hop_counts() {
    let g = generators::gnp_half(N, SEED);
    let apsp = Apsp::compute(&g);
    for (name, scheme) in all_schemes(&g) {
        if !matches!(
            name,
            "full_table" | "theorem1" | "theorem1_ib" | "theorem2" | "full_information"
                | "multi_interval"
        )
        {
            continue;
        }
        let mut net = Network::new(scheme.as_ref());
        for s in 0..N {
            for t in 0..N {
                if s == t {
                    continue;
                }
                let d = net.send(s, t).unwrap();
                assert_eq!(
                    d.hops() as u32,
                    apsp.distance(s, t).unwrap(),
                    "{name}: pair ({s},{t})"
                );
            }
        }
    }
}

#[test]
fn simulator_and_verifier_agree() {
    let g = generators::gnp_half(N, SEED);
    let scheme = Theorem3Scheme::build(&g).unwrap();
    let report = optimal_routing_tables::routing::verify::verify_scheme(&g, &scheme).unwrap();
    let mut net = Network::new(&scheme);
    let (ok, _) = net.send_all_pairs();
    assert_eq!(report.delivered as u64, ok);
    assert_eq!(report.total_hops, net.stats().total_hops);
}

#[test]
fn landmark_scheme_handles_sparse_topologies_where_theorems_cannot() {
    // The paper's schemes need diameter-2 random graphs; the baselines
    // must cover the rest of the world.
    for (g, name) in [
        (generators::grid(6, 6), "grid"),
        (generators::cycle(20), "cycle"),
        (generators::connected_gnp(40, 0.15, 3), "sparse gnp"),
    ] {
        assert!(Theorem1Scheme::build(&g).is_err(), "{name} should violate preconditions");
        let scheme = LandmarkScheme::build(&g, 1).unwrap();
        let mut net = Network::new(&scheme);
        let (_, bad) = net.send_all_pairs();
        assert_eq!(bad, 0, "{name}");
        let interval = IntervalScheme::build(&g).unwrap();
        let mut net = Network::new(&interval);
        let (_, bad) = net.send_all_pairs();
        assert_eq!(bad, 0, "{name} (interval)");
    }
}

#[test]
fn link_failures_degrade_gracefully() {
    let g = generators::gnp_half(N, SEED);
    let fi = FullInformationScheme::build(&g).unwrap();
    let mut net = Network::new(&fi);
    // Cut every link on one node except one; traffic to that node must
    // still arrive via the survivor. The victim is chosen adjacent to the
    // sender, so the surviving link (its lowest-id neighbour, i.e. node 0)
    // is exactly the sender's direct edge — the scenario is then well-posed
    // for any RNG stream, not just one specific sample.
    let victim = g.neighbors(0)[0];
    let nbrs = g.neighbors(victim).to_vec();
    for &v in &nbrs[1..] {
        assert!(net.fail_link(victim, v), "{victim}-{v} must be a real link");
    }
    let d = net.send(0, victim).unwrap();
    assert_eq!(*d.path.last().unwrap(), victim);
    assert_eq!(d.path[d.path.len() - 2], nbrs[0], "must enter via the survivor");
    // Cut the last link: now it must fail, and report precisely.
    assert!(net.fail_link(victim, nbrs[0]));
    match net.send(0, victim) {
        Err(SimError::LinkDown { .. } | SimError::HopLimit { .. }) => {}
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn charged_sizes_differ_between_gamma_and_alpha() {
    let g = generators::gnp_half(N, SEED);
    let t2 = Theorem2Scheme::build(&g).unwrap();
    // γ: everything is labels.
    assert_eq!(t2.total_size_bits(), t2.labeling().total_charged_bits());
    let t1 = Theorem1Scheme::build(&g).unwrap();
    // α: labels are free.
    assert_eq!(t1.labeling().total_charged_bits(), 0);
    let per_node: usize = (0..N).map(|u| t1.node_size_bits(u)).sum();
    assert_eq!(t1.total_size_bits(), per_node);
}
