//! Smoke test for `ort bench-build`: runs the real `n = 1024` cell for a
//! pair of schemes (one adjacency-based, one APSP-hungry) and checks the
//! snapshot's record schema — the fields `ort bench-gate` reads back.

use optimal_routing_tables::bench_build::{self, BenchBuildOptions, BAND_ROWS};
use optimal_routing_tables::conformance::json::Json;
use optimal_routing_tables::conformance::registry::SchemeId;

#[test]
fn bench_build_n1024_cell_emits_the_gate_schema() {
    let dir = std::env::temp_dir().join("ort_bench_build_smoke");
    let out = dir.join("BENCH_build.json");
    let opts = BenchBuildOptions {
        sizes: vec![1024],
        max_n: 0,
        // One cheap adjacency-based scheme and one APSP-hungry scheme so
        // both peak_bytes shapes (one band vs full matrix) appear, while
        // keeping the debug-build runtime bounded.
        schemes: vec![SchemeId::Interval, SchemeId::Landmark],
        out_path: out.to_string_lossy().into_owned(),
    };
    let records = bench_build::run(&opts).expect("snapshot runs");
    // 2 schemes × 2 families × {banded, full}.
    assert_eq!(records.len(), 8);

    let text = std::fs::read_to_string(&out).expect("snapshot written");
    let doc = Json::parse(&text).expect("snapshot parses");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("build"));
    let results = doc.get("results").and_then(Json::as_arr).expect("results array");
    assert_eq!(results.len(), records.len());

    for r in results {
        // The load-bearing fields, with their types.
        let scheme = r.get("scheme").and_then(Json::as_str).expect("scheme is a string");
        assert!(
            scheme == "interval" || scheme == "landmark",
            "unexpected scheme {scheme}"
        );
        let n = r.get("n").and_then(Json::as_i64).expect("n is an integer");
        assert_eq!(n, 1024);
        let band_rows =
            r.get("band_rows").and_then(Json::as_i64).expect("band_rows is an integer");
        assert!(
            band_rows == BAND_ROWS as i64 || band_rows == n,
            "band_rows is the band width or n, got {band_rows}"
        );
        let peak = r.get("peak_bytes").and_then(Json::as_i64).expect("peak_bytes is an integer");
        assert!(peak >= 0);
        let ms = r.get("build_ms").and_then(Json::as_f64).expect("build_ms is a number");
        assert!(ms.is_finite() && ms >= 0.0);
        // Banded records must show one-band peaks; the n = 1024 cell is
        // exactly what the build-scale gate later re-checks at 16384.
        if band_rows < n {
            assert!(
                peak <= 4 * band_rows * n,
                "{scheme}: banded peak {peak} exceeds one band"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
