//! The telemetry layer's integration contract: spans nest across scoped
//! threads, counter totals are thread-count invariant, the JSONL sink
//! round-trips, active sinks never perturb result files, and the
//! bench-gate flags bit drift.
//!
//! Every test mutates process-global state (the telemetry registry,
//! `ORT_THREADS`), so they serialise on one mutex instead of relying on
//! the harness's thread-per-test default.

#![cfg(feature = "telemetry")]

use std::sync::Mutex;

use optimal_routing_tables::gate::{self, GateConfig};
use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::paths::Apsp;
use optimal_routing_tables::routing::verify;
use optimal_routing_tables::telemetry as tel;

static LOCK: Mutex<()> = Mutex::new(());

/// Spans opened inside `std::thread::scope` workers nest under the parent
/// span captured before the scope, and their counts aggregate.
#[test]
fn spans_nest_across_scoped_threads() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    tel::reset();
    {
        let _outer = tel::span("scope_parent");
        let ctx = tel::Context::current();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let _inherit = ctx.enter();
                    let _child = tel::span("scope_worker");
                });
            }
        });
    }
    let snap = tel::snapshot();
    let paths = snap.span_paths();
    assert!(
        paths.contains(&vec!["scope_parent", "scope_worker"]),
        "worker spans must nest under the pre-scope parent, got {paths:?}"
    );
    assert!(paths.contains(&vec!["scope_parent"]));
    assert_eq!(snap.span_totals("scope_worker").0, 2, "one record per worker thread");
    assert_eq!(snap.span_totals("scope_parent").0, 1);
}

/// The full counter table — not just a few named totals — is identical
/// whether the instrumented work ran on 1, 2 or 8 worker threads.
#[test]
fn counters_are_thread_count_invariant() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = generators::gnp_half(48, 3);
    let mut tables: Vec<Vec<(&'static str, u64)>> = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("ORT_THREADS", threads);
        tel::reset();
        let apsp = Apsp::compute(&g);
        let oracle = apsp.into_oracle();
        let scheme = optimal_routing_tables::conformance::registry::SchemeId::Theorem1
            .build(&g)
            .expect("theorem 1 on G(48, 1/2)");
        verify::verify_scheme_with_oracle(&g, scheme.as_ref(), &oracle).expect("verify");
        tables.push(tel::snapshot().counters);
    }
    std::env::remove_var("ORT_THREADS");

    assert!(
        tables[0].iter().any(|&(n, v)| n == "apsp.frontier_expansions" && v > 0),
        "the APSP hot path must be instrumented, got {:?}",
        tables[0]
    );
    assert!(tables[0].iter().any(|&(n, v)| n == "verify.pairs" && v > 0));
    for (i, t) in tables.iter().enumerate().skip(1) {
        assert_eq!(&tables[0], t, "counter table differs between 1 and {} threads", [1, 2, 8][i]);
    }
}

/// The JSONL stream reproduces every span, counter and gauge event
/// exactly, including span fields.
#[test]
fn jsonl_stream_round_trips() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    tel::reset();
    {
        let _outer = tel::span_with(
            "rt_outer",
            &[("n", tel::FieldValue::Int(48)), ("scheme", tel::FieldValue::Str("t1"))],
        );
        let _inner = tel::span("rt_inner");
    }
    tel::counter!("rt.events").add(41);
    tel::counter!("rt.events").incr();
    tel::gauge!("rt.depth").set_max(7);

    let snap = tel::snapshot();
    let parsed = tel::sink::parse_jsonl(&snap.jsonl()).expect("stream must parse");
    assert_eq!(parsed, snap.to_parsed(), "decoded stream differs from the snapshot it came from");
    // The registry is append-only: counters registered by earlier tests in
    // this process survive `reset()` at value 0, so look up by name.
    let counter = |name: &str| parsed.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    assert_eq!(counter("rt.events"), Some(42));
    let gauge = |name: &str| parsed.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    assert_eq!(gauge("rt.depth"), Some(7));
    assert_eq!(parsed.spans.len(), 2);
    assert_eq!(parsed.spans[1].path, vec!["rt_outer"]);
}

/// Running the CLI with every sink active produces `CONFORMANCE.json`,
/// `RESILIENCE.json` and `CHURN.json` byte-identical to the checked-in
/// snapshots: the observability layer observes, it never perturbs. (The
/// telemetry-*off* half of the guarantee is CI's `--no-default-features`
/// regeneration diff — one binary cannot toggle a compile-time feature.)
///
/// The comparison masks the manifest's *volatile* provenance lines
/// (threads/features/telemetry/build) — those legitimately record the
/// environment, and this test runs inside CI's `ORT_THREADS` matrix.
/// Everything else, payload included, must match byte for byte.
#[test]
fn result_files_are_byte_identical_with_sinks_active() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let exe = env!("CARGO_BIN_EXE_ort");
    for (cmd, checked_in) in [
        ("conformance", "results/CONFORMANCE.json"),
        ("resilience", "results/RESILIENCE.json"),
        ("churn", "results/CHURN.json"),
    ] {
        let out = std::env::temp_dir().join(format!("ort-telemetry-guard-{cmd}.json"));
        let jsonl = std::env::temp_dir().join(format!("ort-telemetry-guard-{cmd}.jsonl"));
        let status = std::process::Command::new(exe)
            .arg(cmd)
            .arg(&out)
            .env("ORT_TELEMETRY", format!("summary,jsonl:{}", jsonl.display()))
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn ort");
        assert!(status.success(), "ort {cmd} failed under active sinks");

        let fresh = std::fs::read_to_string(&out).expect("read fresh report");
        let baseline = std::fs::read_to_string(checked_in).expect("read checked-in report");
        assert_eq!(
            optimal_routing_tables::manifest::mask_volatile(&fresh),
            optimal_routing_tables::manifest::mask_volatile(&baseline),
            "ort {cmd} output drifted under active telemetry sinks"
        );

        let stream = std::fs::read_to_string(&jsonl).expect("jsonl sink file");
        let parsed = tel::sink::parse_jsonl(&stream).expect("sink stream must parse");
        assert!(!parsed.spans.is_empty(), "ort {cmd} recorded no spans");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&jsonl);
    }
}

/// The gate's comparison passes a measurement set against itself and
/// fails it the moment any single bit field drifts.
#[test]
fn gate_flags_bit_drift() {
    let _serial = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    tel::reset();
    let cfg = GateConfig { sizes: vec![32], seed: 1, reps: 1, tolerance: 0.25 };
    let fresh = gate::measure(&cfg).expect("measure all registry schemes at n=32");
    assert_eq!(fresh.len(), optimal_routing_tables::conformance::registry::SchemeId::ALL.len());

    let clean = gate::compare(&fresh, &fresh, cfg.tolerance);
    assert!(clean.pass(), "self-comparison must pass, got {:?}", clean.failures);

    let mut perturbed = fresh.clone();
    perturbed[0].label_bits += 1;
    perturbed[0].total_bits += 1;
    let report = gate::compare(&perturbed, &fresh, cfg.tolerance);
    assert!(!report.pass(), "a one-bit drift must fail the gate");
    assert!(report.failures.iter().any(|f| f.contains("drifted")), "{:?}", report.failures);
}
