//! Repair ≡ rebuild: under any single-edge delta, a patched
//! [`RepairableScheme`] must be indistinguishable — same bytes, same
//! [`VerifyReport`], same refusals — from a full-table scheme rebuilt
//! from scratch on the post-delta graph.
//!
//! Run under `ORT_THREADS ∈ {1, 2, 8}` by the CI determinism matrix:
//! every assertion here is thread-count-independent.
//!
//! [`RepairableScheme`]: optimal_routing_tables::routing::repair::RepairableScheme
//! [`VerifyReport`]: optimal_routing_tables::routing::verify::VerifyReport

use proptest::prelude::*;

use optimal_routing_tables::conformance::enumerate;
use optimal_routing_tables::graphs::{generators, paths, Graph};
use optimal_routing_tables::routing::repair::RepairableScheme;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::full_table::FullTableScheme;
use optimal_routing_tables::routing::snapshot::{self, SchemeKind};
use optimal_routing_tables::routing::verify::{self, VerifyReport};

fn bytes(scheme: &dyn RoutingScheme) -> Vec<bool> {
    snapshot::save(SchemeKind::FullTable, scheme).expect("snapshot").iter().collect()
}

fn reports_equal(a: &VerifyReport, b: &VerifyReport) -> bool {
    a.delivered == b.delivered
        && a.failures == b.failures
        && a.stretches == b.stretches
        && a.total_hops == b.total_hops
        && a.worst == b.worst
}

/// Applies the single-edge delta `{u, v}` (toggle: add if absent,
/// remove if present) to a fresh `RepairableScheme` over `g`, and checks
/// full equivalence with a from-scratch build on the post-delta graph.
fn check_delta(g: &Graph, u: usize, v: usize) {
    let mut repairable = RepairableScheme::full_table(g.clone()).expect("build");
    let refusals_before = repairable.stats().refusals;
    let before = bytes(repairable.scheme());

    let mut target = g.clone();
    let removing = g.neighbors(u).contains(&v);
    let outcome = if removing {
        target.remove_edge(u, v).expect("toggle");
        repairable.remove_link(u, v)
    } else {
        target.add_edge(u, v).expect("toggle");
        repairable.add_link(u, v)
    };

    if !paths::is_connected(&target) {
        // A from-scratch build would reject this topology; the repair
        // layer must refuse it, count the refusal, and not move a bit.
        assert!(outcome.is_err(), "disconnecting delta {{{u},{v}}} was accepted");
        assert_eq!(repairable.stats().refusals, refusals_before + 1);
        assert_eq!(bytes(repairable.scheme()), before, "refused delta mutated the scheme");
        return;
    }
    outcome.unwrap_or_else(|e| panic!("connectivity-preserving delta {{{u},{v}}} refused: {e}"));
    assert_eq!(repairable.stats().refusals, refusals_before, "spurious refusal count");

    let fresh = FullTableScheme::build(&target).expect("fresh build");
    assert_eq!(
        bytes(repairable.scheme()),
        bytes(&fresh),
        "patched scheme differs from cold build after delta {{{u},{v}}}"
    );
    // Verify the patched scheme against its own repaired oracle and the
    // fresh scheme against a fresh APSP: equal reports certify the
    // repaired distances, not just the table bytes.
    let patched_report =
        verify::verify_scheme_with_dists(&target, repairable.scheme(), repairable.oracle())
            .expect("verify patched");
    let fresh_report = verify::verify_scheme(&target, &fresh).expect("verify fresh");
    assert!(reports_equal(&patched_report, &fresh_report), "verify reports diverge");
    assert!(patched_report.is_shortest_path());
}

/// Every connected graph on up to 6 nodes, under **every** possible
/// single-edge delta — including the disconnecting ones, which must be
/// refused exactly when a from-scratch build would reject the result.
#[test]
fn exhaustive_small_corpus_every_single_edge_delta() {
    let mut checked = 0usize;
    for (n, graphs) in enumerate::connected_graphs_upto(6) {
        for g in &graphs {
            for u in 0..n {
                for v in (u + 1)..n {
                    check_delta(g, u, v);
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 1000, "corpus unexpectedly small: {checked} deltas");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A chain of random single-edge deltas on seeded `G(128, 1/2)`,
    /// patched in place on one long-lived `RepairableScheme` and
    /// compared to a from-scratch rebuild after every step.
    #[test]
    fn gnp128_random_delta_chain_matches_cold_rebuilds(seed in any::<u64>()) {
        let g0 = generators::gnp_half(128, seed);
        let mut repairable = RepairableScheme::full_table(g0.clone()).expect("build");
        let mut target = g0;
        let mut state = seed | 1;
        let mut lcg = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..12 {
            let (u, v) = loop {
                let u = lcg() % 128;
                let v = lcg() % 128;
                if u != v {
                    break (u.min(v), u.max(v));
                }
            };
            if target.neighbors(u).contains(&v) {
                let mut probe = target.clone();
                probe.remove_edge(u, v).expect("probe");
                if !paths::is_connected(&probe) {
                    // G(128, 1/2) has no bridges in practice; if one
                    // appears, skip rather than tear the chain.
                    continue;
                }
                target = probe;
                repairable.remove_link(u, v).expect("remove");
            } else {
                target.add_edge(u, v).expect("add");
                repairable.add_link(u, v).expect("add");
            }
            prop_assert_eq!(bytes(repairable.scheme()), bytes(&FullTableScheme::build(&target).expect("fresh")));
        }
        prop_assert_eq!(repairable.stats().refusals, 0);
        // One full verification at the end of the chain: the long-lived
        // patched scheme still routes every pair along shortest paths,
        // measured against its own repaired oracle.
        let report = verify::verify_scheme_with_dists(&target, repairable.scheme(), repairable.oracle())
            .expect("verify");
        prop_assert!(report.is_shortest_path());
        prop_assert!(repairable.stats().patches > 0, "chain never exercised the patch path");
    }
}
