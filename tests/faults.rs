//! Integration tests for the fault-injection engine and the recovery
//! machinery: timed plans, crash/restart, bipartitions, TTL, and the
//! resilient detour adapter — all through the public facade, the way a
//! deployment would wire them.

use proptest::prelude::*;

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::full_table::FullTableScheme;
use optimal_routing_tables::routing::schemes::resilient::ResilientScheme;
use optimal_routing_tables::simnet::faults::{FaultEvent, FaultPlan, FaultState, TimedFault};
use optimal_routing_tables::simnet::resilience::resilience_hop_limit;
use optimal_routing_tables::simnet::rounds::{RetryPolicy, RoundSimulator};
use optimal_routing_tables::simnet::workloads;
use optimal_routing_tables::simnet::{Network, SimError};

#[test]
fn crash_and_restart_drains_afterwards() {
    // Node 2 crashes before any round and restarts at round 6. With
    // retries on, every message must eventually get through — the crash
    // delays the network, it does not lose anything permanently.
    let g = generators::path(5); // 0-1-2-3-4
    let scheme = FullTableScheme::build(&g).unwrap();
    let mut sim = RoundSimulator::new(&scheme, 4);
    sim.set_fault_plan(FaultPlan::from_events(vec![
        TimedFault { at: 0, event: FaultEvent::NodeCrash(2) },
        TimedFault { at: 6, event: FaultEvent::NodeRestart(2) },
    ]))
    .unwrap();
    sim.set_retry_policy(RetryPolicy { max_retries: 10, backoff_base: 1, backoff_cap: 4 });
    // Workload crossing the crashed node from both sides, plus traffic
    // that never touches it.
    let report = sim.run(&[(0, 4), (4, 0), (1, 3), (0, 1), (3, 4)]);
    assert_eq!(report.delivered, 5, "all messages arrive once node 2 is back");
    assert_eq!(report.errored, 0);
    assert_eq!(report.stranded, 0);
    assert!(report.retries >= 1, "the crash must have forced retries");
    assert!(report.rounds > 6, "delivery cannot complete before the restart");
}

#[test]
fn bipartition_cuts_exactly_the_cross_pairs_and_heals() {
    // On a complete graph every route is the direct edge, so an active
    // bipartition must fail *exactly* the cross-cut pairs.
    let n = 10;
    let side: Vec<usize> = vec![0, 1, 2, 3];
    let g = generators::complete(n);
    let scheme = FullTableScheme::build(&g).unwrap();
    let mut net = Network::new(&scheme);
    net.fault_state_mut().apply(&FaultEvent::Bipartition { side: side.clone() }).unwrap();
    let mut cross_failed = 0u64;
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let crosses = side.contains(&s) != side.contains(&t);
            match net.send(s, t) {
                Ok(_) => assert!(!crosses, "({s},{t}) crosses the cut but was delivered"),
                Err(SimError::Partitioned { .. }) => {
                    assert!(crosses, "({s},{t}) stayed on one side but was cut");
                    cross_failed += 1;
                }
                Err(e) => panic!("({s},{t}): unexpected error {e}"),
            }
        }
    }
    let expected_cross = 2 * side.len() as u64 * (n - side.len()) as u64;
    assert_eq!(cross_failed, expected_cross);
    assert_eq!(net.stats().failures.partitioned, expected_cross);
    // Reachability agrees with the cut.
    let reach = net.fault_state().reachable_from(0);
    assert!(side.iter().all(|&u| reach[u]));
    assert!((0..n).filter(|u| !side.contains(u)).all(|u| !reach[u]));
    // Healing restores everything.
    net.fault_state_mut().apply(&FaultEvent::Heal).unwrap();
    net.reset_stats();
    let (ok, bad) = net.send_all_pairs();
    assert_eq!((ok, bad), ((n * (n - 1)) as u64, 0));
}

#[test]
fn ttl_expiry_is_counted_not_stranded() {
    // A star at capacity 1 serializes through the hub: late messages age
    // out. They must be attributed to TTL expiry, never left stranded.
    let g = generators::star(12);
    let scheme = FullTableScheme::build(&g).unwrap();
    let mut sim = RoundSimulator::new(&scheme, 1);
    sim.set_ttl(Some(3));
    let workload = workloads::incast(12, 1);
    let report = sim.run(&workload);
    assert!(report.errored_by.ttl_expired > 0, "congestion must expire something");
    assert_eq!(report.stranded, 0);
    assert_eq!(report.delivered + report.errored, workload.len());
    assert_eq!(report.errored_by.total() as usize, report.errored);
}

#[test]
fn both_simulators_see_the_same_fault_trajectory() {
    // The same plan replayed on each simulator's clock produces the same
    // verdict for the same pair: down while the plan says down, up after.
    let g = generators::path(6);
    let scheme = FullTableScheme::build(&g).unwrap();
    let plan = FaultPlan::from_events(vec![
        TimedFault { at: 1, event: FaultEvent::LinkDown(2, 3) },
        TimedFault { at: 3, event: FaultEvent::LinkUp(2, 3) },
    ]);
    // Network: epoch clock, one send per epoch.
    let mut net = Network::new(&scheme);
    net.set_fault_plan(plan.clone()).unwrap();
    let by_epoch: Vec<bool> = (0..5).map(|_| net.send(0, 5).is_ok()).collect();
    assert_eq!(by_epoch, vec![true, false, false, true, true]);
    // FaultState driven by hand on the same clock agrees.
    let mut fs = FaultState::new(scheme.port_assignment());
    let by_clock: Vec<bool> = (0..5)
        .map(|t| {
            fs.advance_to(&plan, t).unwrap();
            fs.hop_usable(2, 3)
        })
        .collect();
    assert_eq!(by_clock, by_epoch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resilient_walks_never_exceed_the_hop_limit(
        seed in any::<u64>(),
        n in 12usize..28,
        intensity in 0.0f64..0.45,
    ) {
        // The detour budget — not the hop budget — must be what stops a
        // lost walk: across random graphs and fault loads, a wrapped
        // scheme never records a hop-limit failure, and every message
        // either arrives or fails with an attributable fault.
        let g = generators::gnp_half(n, seed);
        let scheme = ResilientScheme::wrap(Box::new(FullTableScheme::build(&g).unwrap()));
        let plan = FaultPlan::random_link_faults(scheme.port_assignment(), intensity, seed ^ 0xD1CE);
        let mut net = Network::new(&scheme);
        net.set_hop_limit(resilience_hop_limit(n));
        net.set_fault_plan(plan).unwrap();
        let (ok, bad) = net.send_all_pairs();
        prop_assert_eq!(ok + bad, (n * (n - 1)) as u64);
        let stats = net.stats();
        prop_assert_eq!(stats.failures.hop_limit, 0, "a wrapped walk looped past the budget");
        prop_assert_eq!(stats.failures.misdelivered, 0);
        prop_assert_eq!(stats.failures.router, 0);
        // Loop guard sanity: with no faults, wrapping must be invisible.
        if bad > 0 {
            prop_assert!(stats.failures.link_down > 0 || stats.failures.node_crashed > 0
                || stats.failures.partitioned > 0);
        }
    }

    #[test]
    fn fault_plans_are_validated_everywhere(seed in any::<u64>(), n in 8usize..20) {
        // A plan naming a non-edge is rejected atomically by both
        // simulators, and a valid random plan is accepted by both.
        let g = generators::gnp_half(n, seed);
        let scheme = FullTableScheme::build(&g).unwrap();
        let good = FaultPlan::random_link_faults(scheme.port_assignment(), 0.2, seed);
        let mut bogus = good.clone();
        bogus.push(0, FaultEvent::NodeCrash(n + 3));
        let mut net = Network::new(&scheme);
        prop_assert!(net.set_fault_plan(good.clone()).is_ok());
        prop_assert!(net.set_fault_plan(bogus.clone()).is_err());
        let mut sim = RoundSimulator::new(&scheme, 2);
        prop_assert!(sim.set_fault_plan(good).is_ok());
        prop_assert!(sim.set_fault_plan(bogus).is_err());
    }
}
