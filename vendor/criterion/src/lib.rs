//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate is wired in via `[patch.crates-io]` and
//! provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark is warmed up once,
//! then timed over up to `sample_size` samples bounded by a wall-clock
//! budget, and the mean/min/max per-iteration times are printed. No
//! HTML reports, no outlier analysis — just honest wall-clock numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample wall-clock budget. A sample runs the closure enough times to
/// amortize timer overhead, so the whole benchmark stays bounded.
const SAMPLE_BUDGET: Duration = Duration::from_millis(200);

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for CLI compatibility; this stand-in takes no arguments.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { criterion: self, name }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_benchmark(&id.into().label, self.sample_size, &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.criterion.sample_size, &mut f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.criterion.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// A benchmark id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    measuring: bool,
}

impl Bencher {
    /// Times `f`, recording one sample of `iters_per_sample` iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measuring {
            // Warmup call: run once to page everything in and estimate cost.
            let start = Instant::now();
            black_box(f());
            let once = start.elapsed().max(Duration::from_nanos(1));
            let per_sample =
                (SAMPLE_BUDGET.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
            self.iters_per_sample = per_sample;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1, measuring: false };
    // Warmup pass (also calibrates iterations per sample).
    f(&mut b);
    b.measuring = true;
    let bench_start = Instant::now();
    for _ in 0..sample_size {
        f(&mut b);
        // Overall cap so slow benchmarks cannot run unbounded.
        if bench_start.elapsed() > Duration::from_secs(10) {
            break;
        }
    }
    if b.samples.is_empty() {
        println!("  {label:<48} no samples recorded");
        return;
    }
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "  {label:<48} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2)));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        tiny(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("apsp", 512);
        assert_eq!(id.label, "apsp/512");
    }
}
