//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate is wired in via `[patch.crates-io]` and
//! implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) expanding each `fn name(pat in strategy, ...) { body }` into a
//!   `#[test]` that runs the body over many generated cases;
//! * [`Strategy`] with `prop_map` / `prop_flat_map`;
//! * [`any`]`::<bool|u64|...>()`, integer and `f64` range strategies, and
//!   [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic, no persistence files) and failing
//! cases are **not shrunk** — the panic message simply carries the case
//! index so the failure can be replayed by re-running the test.

use std::ops::Range;

/// The generator threaded through strategies. Deterministic splitmix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for `(test_name, case_index)`.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a new strategy from it, and samples that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: an exact size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real proptest default is 256; this offline stand-in uses
            // a smaller default so debug-mode `cargo test` stays quick.
            Config { cases: 48 }
        }
    }
}

/// The conventional alias used in `#![proptest_config(...)]` headers.
pub use test_runner::Config as ProptestConfig;

/// Why a generated case was rejected (`return Ok(())` / `Err(...)` in test
/// bodies). This stand-in never rejects on its own.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(
                            let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(reject)) => panic!(
                            "proptest stand-in: test {} rejected case {}/{}: {}",
                            stringify!($name), case, config.cases, reject
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest stand-in: test {} failed at case {}/{} (deterministic; re-run reproduces it)",
                                stringify!($name), case, config.cases
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = 3usize..17;
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(n in 2usize..40, bits in crate::collection::vec(any::<bool>(), 0..64)) {
            prop_assert!((2..40).contains(&n));
            prop_assert!(bits.len() < 64);
        }

        #[test]
        fn flat_map_composes(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(any::<u8>(), n)).prop_map(|v| v.len())) {
            prop_assert!((1..5).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in any::<u64>()) {
            prop_assert_ne!(x, x.wrapping_add(1));
        }
    }
}
