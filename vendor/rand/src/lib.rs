//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` cannot be fetched from crates.io. This crate is wired in via
//! `[patch.crates-io]` and implements exactly the API subset the workspace
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the
//! [`Rng`] convenience methods `gen_range` / `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fast, well
//! distributed, and fully deterministic from the seed, which is all the
//! seeded-experiment workloads (`G(n, 1/2)` samples, adversarial port
//! permutations, …) require. The streams differ from the real `StdRng`
//! (ChaCha12), so seeded samples are *internally* reproducible but not
//! bit-compatible with runs against the real crate.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided —
/// the one the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

fn uniform_u64_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span`, so every
    // residue is exactly equally likely.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

fn unit_f64(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not the real `StdRng` (ChaCha12); see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        use super::RngCore;
        assert_ne!(
            StdRng::seed_from_u64(42).next_u64(),
            StdRng::seed_from_u64(43).next_u64()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Full-domain inclusive range must not overflow.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..=5500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
