//! Experiment PERF-BUILD: scheme construction at scale behind
//! `ort bench-build` and `results/BENCH_build.json`.
//!
//! PR 6 scaled the *oracle* to `n = 16384`; this snapshot measures the
//! *builders* there. Every cell is constructed twice:
//!
//! * **banded** — through [`SchemeId::build_with_dists`] over a
//!   [`BandedOracle`] holding [`BAND_ROWS`] distance rows at a time, the
//!   streaming path whose peak distance memory is one band;
//! * **full** — through the historical [`SchemeId::build`] entry point
//!   (`band_rows = n` in the record), which for the APSP-hungry schemes
//!   materialises the full `n²` matrix.
//!
//! Both builds are byte-identical (`crates/conformance/tests/
//! builder_bands.rs` is the proof), so the snapshot is a pure
//! time/memory trade-off curve. Workloads follow the bench conventions:
//! sparse `G(n, n·ln n)` and power-law graphs for the general schemes,
//! dense `G(n, 1/2)` for Theorem 1 (its common-neighbour precondition).
//! `ort bench-gate` reads the snapshot back and fails CI when the
//! banded peak exceeds one band or the banded/full time ratio drifts.

use std::hint::black_box;
use std::time::Instant;

use ort_conformance::registry::SchemeId;
use ort_graphs::generators;
use ort_graphs::oracle::{BandedOracle, Distances};
use ort_graphs::paths::Apsp;
use ort_graphs::Graph;

use crate::bench::BENCH_SEED;

/// Default snapshot location, shared with `ort bench-gate`.
pub const DEFAULT_OUT: &str = "results/BENCH_build.json";

/// Distance rows resident per band in the banded runs — the production
/// streaming width (64 rows of `u8` cells at `n = 16384` is a 1 MiB
/// band).
pub const BAND_ROWS: usize = 64;

/// The sizes the full snapshot sweeps.
pub const SIZES: [usize; 3] = [1024, 4096, 16384];

/// Edge count of the sparse `G(n, m)` workload: `n·ln n`, safely above
/// the `n·ln n / 2` connectivity threshold so every seeded sample is
/// connected with overwhelming probability.
#[must_use]
pub fn gnm_edges(n: usize) -> usize {
    ((n as f64) * (n.max(2) as f64).ln()).ceil() as usize
}

/// What to measure.
#[derive(Debug, Clone)]
pub struct BenchBuildOptions {
    /// Node counts to sweep.
    pub sizes: Vec<usize>,
    /// Skip any size above this bound (0 = no cap) — the CI smoke knob.
    pub max_n: usize,
    /// Restrict to these schemes (empty = the full roster).
    pub schemes: Vec<SchemeId>,
    /// Where to write the JSON snapshot.
    pub out_path: String,
}

impl Default for BenchBuildOptions {
    fn default() -> Self {
        BenchBuildOptions {
            sizes: SIZES.to_vec(),
            max_n: 0,
            schemes: Vec::new(),
            out_path: DEFAULT_OUT.into(),
        }
    }
}

/// One measured construction.
#[derive(Debug, Clone)]
pub struct BuildRecord {
    /// Registry name of the scheme.
    pub scheme: &'static str,
    /// Graph family label (`gnm`, `power_law`, `dense`).
    pub graph: &'static str,
    /// Node count.
    pub n: usize,
    /// Resident distance rows: [`BAND_ROWS`] for banded runs, `n` for
    /// full-matrix runs.
    pub band_rows: usize,
    /// Best-of-reps wall-clock milliseconds for one complete build.
    pub build_ms: f64,
    /// Peak distance-cell bytes held at any moment (0 when the build
    /// path never materialises distances — the adjacency-based schemes'
    /// full-matrix entry point).
    pub peak_bytes: usize,
    /// Bands the banded oracle computed during the measured build
    /// (0 for full-matrix runs) — the thrash detector.
    pub bands_computed: u64,
    /// Size of the built tables, for scale context.
    pub table_bytes: usize,
    /// Region peak from the instrumented allocator for one build — the
    /// measured counterpart of the analytic `peak_bytes` (the region also
    /// contains the finished tables, so it sits above the distance-cell
    /// claim by roughly `table_bytes`). `None` (serialised as `0`) when
    /// the allocator is compiled out.
    pub measured_peak_bytes: Option<u64>,
}

/// The workloads a scheme is measured on, with its size cap (builds
/// whose cost curve leaves the snapshot budget stop early; every scheme
/// the acceptance gate needs runs to the largest size).
fn roster() -> Vec<(SchemeId, Vec<&'static str>, usize)> {
    vec![
        (SchemeId::FullTable, vec!["gnm", "power_law"], usize::MAX),
        (SchemeId::Interval, vec!["gnm", "power_law"], usize::MAX),
        (SchemeId::Landmark, vec!["gnm", "power_law"], usize::MAX),
        (SchemeId::MultiInterval, vec!["power_law"], 4096),
        (SchemeId::FullInformation, vec!["power_law"], 1024),
        (SchemeId::Theorem1, vec!["dense"], usize::MAX),
    ]
}

/// Whether the scheme's historical build path computes a full APSP.
fn is_apsp_hungry(id: SchemeId) -> bool {
    matches!(
        id,
        SchemeId::FullTable
            | SchemeId::FullInformation
            | SchemeId::MultiInterval
            | SchemeId::Landmark
    )
}

fn make_graph(family: &str, n: usize) -> Graph {
    match family {
        "gnm" => generators::gnm_seeded(n, gnm_edges(n), BENCH_SEED),
        "power_law" => generators::power_law_seeded(
            n,
            crate::bench::SPARSE_M,
            crate::bench::SPARSE_GAMMA,
            BENCH_SEED,
        ),
        "dense" => generators::gnp_half(n, BENCH_SEED),
        other => unreachable!("unknown graph family {other}"),
    }
}

/// Best-of-`reps` wall-clock milliseconds for `f` (no warmup: a build at
/// `n = 16384` is seconds of work, so the first run *is* the steady
/// state, and doubling it would double the snapshot's wall clock).
fn best_ms<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure_cell(records: &mut Vec<BuildRecord>, id: SchemeId, family: &'static str, n: usize) {
    let g = make_graph(family, n);
    let reps = if n > 2048 { 1 } else { 3 };

    // Banded: oracle construction is part of the measured build — the
    // streaming path owns its oracle, there is nothing to amortise. The
    // first rep doubles as the allocator-audit region (the MemSpan costs
    // two atomics, not a separate build).
    let mut banded_probe: Option<(usize, u64, usize)> = None;
    let mut banded_measured: Option<u64> = None;
    let banded_ms = best_ms(
        || {
            let region = (banded_measured.is_none() && ort_telemetry::alloc::installed())
                .then(|| ort_telemetry::alloc::mem_span("bench.measure"));
            let banded = BandedOracle::new(g.clone(), BAND_ROWS.min(n));
            let scheme = id.build_with_dists(&g, &banded).expect("banded build");
            if let Some(span) = region {
                banded_measured = Some(span.finish().region_peak_bytes);
            }
            banded_probe = Some((
                banded.peak_bytes(),
                banded.bands_computed(),
                scheme.total_size_bits().div_ceil(8),
            ));
            black_box(&scheme);
        },
        reps,
    );
    let (peak, bands, table_bytes) = banded_probe.expect("probe set by the measured closure");
    records.push(BuildRecord {
        scheme: id.name(),
        graph: family,
        n,
        band_rows: BAND_ROWS.min(n),
        build_ms: banded_ms,
        peak_bytes: peak,
        bands_computed: bands,
        table_bytes,
        measured_peak_bytes: banded_measured,
    });

    // Full matrix: the historical entry point, timed as-is. Its peak
    // distance memory is the full APSP the wrapper computes internally
    // (probed separately), or zero for the adjacency-based schemes.
    let mut full_measured: Option<u64> = None;
    let full_ms = best_ms(
        || {
            let region = (full_measured.is_none() && ort_telemetry::alloc::installed())
                .then(|| ort_telemetry::alloc::mem_span("bench.measure"));
            let scheme = id.build(&g).expect("full build");
            if let Some(span) = region {
                full_measured = Some(span.finish().region_peak_bytes);
            }
            drop(black_box(scheme));
        },
        reps,
    );
    let full_peak = if is_apsp_hungry(id) { Apsp::compute(&g).heap_bytes() } else { 0 };
    records.push(BuildRecord {
        scheme: id.name(),
        graph: family,
        n,
        band_rows: n,
        build_ms: full_ms,
        peak_bytes: full_peak,
        bands_computed: 0,
        table_bytes,
        measured_peak_bytes: full_measured,
    });
}

/// Runs the snapshot, writes `opts.out_path`, and returns the records.
///
/// # Errors
///
/// Returns a message if the snapshot file cannot be written.
pub fn run(opts: &BenchBuildOptions) -> Result<Vec<BuildRecord>, String> {
    let _span = ort_telemetry::span("bench.build");
    let keep_n = |&n: &usize| opts.max_n == 0 || n <= opts.max_n;
    let keep_scheme =
        |id: SchemeId| opts.schemes.is_empty() || opts.schemes.contains(&id);
    let mut records = Vec::new();
    for &n in opts.sizes.iter().filter(|n| keep_n(n)) {
        for (id, families, cap) in roster() {
            if n > cap || !keep_scheme(id) {
                continue;
            }
            for family in families {
                measure_cell(&mut records, id, family, n);
            }
        }
    }
    let json = to_json(&records);
    let schemes = if opts.schemes.is_empty() {
        "all".to_string()
    } else {
        opts.schemes.iter().map(|id| id.name()).collect::<Vec<_>>().join(",")
    };
    crate::manifest::write_stamped_raw(
        &opts.out_path,
        &json,
        &crate::manifest::RunInfo::new(
            "bench-build",
            format!("max_n={} schemes={schemes}", opts.max_n),
            BENCH_SEED.to_string(),
        ),
    )
    .map_err(|e| format!("cannot write {}: {e}", opts.out_path))?;
    Ok(records)
}

/// Serialises the snapshot in the `results/BENCH_build.json` format
/// (`results[].scheme/n/band_rows/peak_bytes/build_ms` are load-bearing
/// for `ort bench-gate`).
#[must_use]
pub fn to_json(records: &[BuildRecord]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"build\",\n");
    json.push_str(&format!(
        "  \"graph\": \"gnm: gnm(n, ceil(n ln n), seed={BENCH_SEED}); power_law: power_law(n, m={}, gamma={}, seed={BENCH_SEED}); dense: gnp_half(n, seed={BENCH_SEED})\",\n",
        crate::bench::SPARSE_M,
        crate::bench::SPARSE_GAMMA,
    ));
    json.push_str(&format!("  \"band_rows\": {BAND_ROWS},\n"));
    json.push_str("  \"unit\": \"ms, best-of-reps wall clock for one complete build\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        // `measured_peak_bytes` rides on its own continuation line so
        // `manifest::mask_volatile` can drop it (0 when the allocator is
        // compiled out) — masked text stays identical across feature sets.
        json.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"graph\": \"{}\", \"n\": {}, \"band_rows\": {}, \"build_ms\": {:.3}, \"peak_bytes\": {}, \"bands_computed\": {}, \"table_bytes\": {},\n      \"measured_peak_bytes\": {}}}{sep}\n",
            r.scheme, r.graph, r.n, r.band_rows, r.build_ms, r.peak_bytes, r.bands_computed,
            r.table_bytes, r.measured_peak_bytes.unwrap_or(0),
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Human-readable summary of a snapshot run.
#[must_use]
pub fn summary(records: &[BuildRecord], out_path: &str) -> String {
    let mut out = String::from("== scheme construction snapshot ==\n\n");
    for r in records {
        out.push_str(&format!(
            "  {:<16} {:<10} n={:<6} band={:<6} {:>10.3} ms  peak={:>9} KiB  tables={:>9} KiB\n",
            r.scheme,
            r.graph,
            r.n,
            if r.band_rows == r.n { "full".into() } else { r.band_rows.to_string() },
            r.build_ms,
            r.peak_bytes / 1024,
            r.table_bytes / 1024,
        ));
    }
    out.push_str(&format!("  wrote {out_path}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_runs_and_serialises_at_tiny_sizes() {
        let dir = std::env::temp_dir().join("ort_bench_build_test");
        let out = dir.join("BENCH_build.json");
        let opts = BenchBuildOptions {
            sizes: vec![48],
            max_n: 0,
            schemes: Vec::new(),
            out_path: out.to_string_lossy().into_owned(),
        };
        let records = run(&opts).unwrap();
        // Every roster cell × families × {banded, full}.
        assert_eq!(records.len(), 2 * (2 + 2 + 2 + 1 + 1 + 1));
        assert!(records.iter().all(|r| r.build_ms.is_finite()));
        // Records come in (banded, full) pairs per cell, with identical
        // table sizes — byte-identity leaves nothing else to be.
        for pair in records.chunks(2) {
            let [banded, full] = pair else { panic!("odd record count") };
            assert_eq!(banded.scheme, full.scheme);
            assert_eq!(banded.graph, full.graph);
            assert!(banded.bands_computed > 0, "{}: banded row first", banded.scheme);
            assert_eq!(full.bands_computed, 0, "{}: full row second", full.scheme);
            assert_eq!(banded.table_bytes, full.table_bytes, "{}", banded.scheme);
            if ort_telemetry::alloc::installed() {
                // The measured build region contains the distance cells
                // the analytic claim models (plus graph and tables), so
                // it can never fall below the claim.
                let m = banded.measured_peak_bytes.expect("allocator installed");
                assert!(
                    m >= banded.peak_bytes as u64,
                    "{}: measured {} < claimed {}",
                    banded.scheme,
                    m,
                    banded.peak_bytes
                );
            }
        }
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"scheme\": \"full-table\""));
        assert!(json.contains("\"measured_peak_bytes\""));
        assert!(!summary(&records, "x").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scheme_filter_and_max_n_cap_the_workload() {
        let dir = std::env::temp_dir().join("ort_bench_build_cap_test");
        let out = dir.join("BENCH_build.json");
        let opts = BenchBuildOptions {
            sizes: vec![32, 64],
            max_n: 40,
            schemes: vec![SchemeId::FullTable],
            out_path: out.to_string_lossy().into_owned(),
        };
        let records = run(&opts).unwrap();
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.n <= 40 && r.scheme == "full-table"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
