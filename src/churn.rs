//! The continuous-churn sweep behind `ort churn`.
//!
//! Each cell seeds a topology, generates a connectivity-preserving
//! [`ChurnPlan`], and drives a [`RepairableScheme`] through every event —
//! link adds and removes absorbed by incremental oracle repair plus
//! dirty-region table patching, joins and leaves by whole-scheme rebuild.
//! After **every** event the sweep checks, against a from-scratch
//! [`FullTableScheme`] build on the post-event topology:
//!
//! * **byte identity** — the repaired scheme's snapshot equals the cold
//!   build's snapshot bit for bit (the PR 7 byte-identity guarantee,
//!   extended through repair);
//! * **bit accounting** — [`BitBreakdown`] reconciles exactly with
//!   `total_size_bits()`;
//! * on small cells, **verify equality** — the full [`VerifyReport`]
//!   (every ordered pair, stretch measured against the *repaired*
//!   oracle) matches the fresh scheme's report verified against a
//!   fresh APSP, and routing is shortest-path.
//!
//! Large cells replace per-step exhaustive verification with a sampled
//! verify at the end of the horizon. A final refusal probe (an empty
//! join) confirms that refused deltas are counted and leave every byte
//! untouched.
//!
//! The report (`results/CHURN.json`) contains **no wall-clock timings**:
//! every field is a deterministic function of `(topology, config, seed)`,
//! so the file is byte-identical under any `ORT_THREADS` setting and
//! with telemetry sinks on or off. The repair-vs-rebuild *speed* gate is
//! measured fresh by `ort bench-gate` (see `gate::check_all`), never
//! read from this file.
//!
//! [`ChurnPlan`]: ort_simnet::churn::ChurnPlan
//! [`RepairableScheme`]: ort_routing::repair::RepairableScheme
//! [`FullTableScheme`]: ort_routing::schemes::full_table::FullTableScheme
//! [`BitBreakdown`]: ort_routing::accounting::BitBreakdown
//! [`VerifyReport`]: ort_routing::verify::VerifyReport

use ort_conformance::json::Json;
use ort_graphs::{generators, Graph};
use ort_routing::accounting::BitBreakdown;
use ort_routing::repair::RepairableScheme;
use ort_routing::schemes::full_table::FullTableScheme;
use ort_routing::snapshot::{self, SchemeKind};
use ort_routing::verify::{self, VerifyReport};
use ort_simnet::churn::{ChurnConfig, ChurnEvent, ChurnPlan};

/// Seed for churn plans and cell topologies (stable so the checked-in
/// report is reproducible).
pub const CHURN_SEED: u64 = 29;

/// Default output path.
pub const DEFAULT_OUT: &str = "results/CHURN.json";

/// Default size ceiling: cells above this `n₀` are skipped. The
/// checked-in `results/CHURN.json` and the CI smoke job both use the
/// default, so their documents diff byte-for-byte; pass `--max-n 4096`
/// for the full sweep.
pub const DEFAULT_MAX_N: usize = 1024;

/// Options for [`churn_sweep`].
pub struct ChurnOptions {
    /// Where the report is written (recorded by the caller; the sweep
    /// itself does not touch the filesystem).
    pub out_path: String,
    /// Cells with more than this many initial nodes are skipped.
    pub max_n: usize,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions { out_path: DEFAULT_OUT.into(), max_n: DEFAULT_MAX_N }
    }
}

/// Everything `ort churn` needs to write and judge a run.
pub struct ChurnOutcome {
    /// The `results/CHURN.json` document.
    pub report: Json,
    /// Acceptance violations (empty ⇒ exit 0).
    pub violations: Vec<String>,
}

/// One swept topology plus its per-step check level.
struct CellSpec {
    name: &'static str,
    graph_desc: &'static str,
    g0: Graph,
    steps: u64,
    /// Exhaustively verify both schemes after every event (small cells).
    full_verify: bool,
    /// Source stride for the end-of-horizon sampled verify when
    /// `full_verify` is off.
    probe_stride: usize,
}

fn cell_specs(max_n: usize) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    if max_n >= 32 {
        cells.push(CellSpec {
            name: "gnp32",
            graph_desc: "gnp_half(32)",
            g0: generators::gnp_half(32, CHURN_SEED),
            steps: 40,
            full_verify: true,
            probe_stride: 0,
        });
    }
    if max_n >= 128 {
        cells.push(CellSpec {
            name: "sparse128",
            graph_desc: "connected_gnp(128, 0.06)",
            g0: generators::connected_gnp(128, 0.06, CHURN_SEED),
            steps: 40,
            full_verify: true,
            probe_stride: 0,
        });
    }
    if max_n >= 1024 {
        cells.push(CellSpec {
            name: "sparse1024",
            graph_desc: "connected_gnp(1024, 0.01)",
            g0: generators::connected_gnp(1024, 0.01, CHURN_SEED),
            steps: 24,
            full_verify: false,
            probe_stride: 7,
        });
    }
    if max_n >= 4096 {
        cells.push(CellSpec {
            name: "sparse4096",
            graph_desc: "power_law(4096, m=2, gamma=2.5)",
            g0: generators::power_law_seeded(
                4096,
                crate::bench::SPARSE_M,
                crate::bench::SPARSE_GAMMA,
                CHURN_SEED,
            ),
            steps: 12,
            full_verify: false,
            probe_stride: 31,
        });
    }
    cells
}

/// Field-wise [`VerifyReport`] equality. `VerifyReport` intentionally
/// does not implement `Eq` (it holds measured data, not an identity),
/// so the sweep compares the fields that must agree when the repaired
/// scheme equals a cold build: both reports are produced in the same
/// deterministic pair order, so vector comparison is exact.
fn reports_equal(a: &VerifyReport, b: &VerifyReport) -> bool {
    a.delivered == b.delivered
        && a.failures == b.failures
        && a.stretches == b.stretches
        && a.total_hops == b.total_hops
        && a.worst == b.worst
}

fn scheme_bytes(scheme: &dyn ort_routing::scheme::RoutingScheme) -> Result<Vec<bool>, String> {
    let bits = snapshot::save(SchemeKind::FullTable, scheme).map_err(|e| e.to_string())?;
    Ok(bits.iter().collect())
}

struct CellResult {
    cell: Json,
    violations: Vec<String>,
    patches: u64,
    rebuilds: u64,
    membership_events: u64,
}

#[allow(clippy::too_many_lines)]
fn run_cell(spec: &CellSpec, progress: &mut dyn FnMut(&str)) -> Result<CellResult, String> {
    let n0 = spec.g0.node_count();
    let _span = ort_telemetry::span_with(
        "churn.cell",
        &[
            ("n0", ort_telemetry::FieldValue::Int(n0 as u64)),
            ("steps", ort_telemetry::FieldValue::Int(spec.steps)),
        ],
    );
    let cfg = ChurnConfig { steps: spec.steps, ..ChurnConfig::default() };
    let plan = ChurnPlan::generate(&spec.g0, &cfg, CHURN_SEED);
    let mut repairable =
        RepairableScheme::full_table(spec.g0.clone()).map_err(|e| format!("{}: {e}", spec.name))?;
    let bits_initial = repairable.scheme().total_size_bits();

    let mut violations = Vec::new();
    let mut log = Vec::new();
    let mut counts = [0u64; 4]; // add_link, remove_link, join, leave
    let mut byte_identical_steps = 0usize;
    let mut verify_equal_steps = 0usize;
    let mut breakdown_ok = true;
    let mut dirty_rows_total = 0u64;
    let mut max_dirty_fraction = 0.0f64;
    let mut last_full_report: Option<VerifyReport> = None;

    for timed in plan.events() {
        let n_before = repairable.node_count();
        let (kind, idx, report) = match &timed.event {
            ChurnEvent::AddLink(u, v) => ("add_link", 0, repairable.add_link(*u, *v)),
            ChurnEvent::RemoveLink(u, v) => ("remove_link", 1, repairable.remove_link(*u, *v)),
            ChurnEvent::Join { peers } => ("join", 2, repairable.join(peers).map(|(_, r)| r)),
            ChurnEvent::Leave(u) => ("leave", 3, repairable.leave(*u)),
        };
        let report = report
            .map_err(|e| format!("{} step {}: {} refused: {e}", spec.name, timed.at, timed.event))?;
        counts[idx] += 1;
        // Staleness evidence over *link* deltas only: how many distance
        // rows a single flap would have left stale without repair. Joins
        // and leaves aggregate several repairs (and always rebuild), so
        // their dirty counts are not comparable.
        if idx < 2 {
            dirty_rows_total += report.dirty_nodes as u64;
            max_dirty_fraction =
                max_dirty_fraction.max(report.dirty_nodes as f64 / n_before as f64);
        }

        // Cold build on the post-event topology: the ground truth every
        // per-step check compares against.
        let fresh = FullTableScheme::build(repairable.graph())
            .map_err(|e| format!("{} step {}: fresh build: {e}", spec.name, timed.at))?;
        let byte_identical = scheme_bytes(repairable.scheme())? == scheme_bytes(&fresh)?;
        if byte_identical {
            byte_identical_steps += 1;
        } else {
            violations.push(format!(
                "{}: step {} ({}) left the repaired scheme byte-different from a cold build",
                spec.name, timed.at, timed.event
            ));
        }
        let reconciled = BitBreakdown::of(repairable.scheme()).total()
            == repairable.scheme().total_size_bits();
        if !reconciled {
            breakdown_ok = false;
            violations.push(format!(
                "{}: step {} ({}) broke bit-accounting reconciliation",
                spec.name, timed.at, timed.event
            ));
        }

        let verify_equal = if spec.full_verify {
            // The repaired scheme is verified against the *repaired*
            // oracle, the fresh scheme against a fresh APSP — equality
            // cross-validates the oracle's distances, not just the table
            // bytes.
            let repaired_report =
                verify::verify_scheme_with_dists(repairable.graph(), repairable.scheme(), repairable.oracle())
                    .map_err(|e| format!("{} step {}: verify: {e}", spec.name, timed.at))?;
            let fresh_report = verify::verify_scheme(repairable.graph(), &fresh)
                .map_err(|e| format!("{} step {}: verify fresh: {e}", spec.name, timed.at))?;
            let equal = reports_equal(&repaired_report, &fresh_report)
                && repaired_report.is_shortest_path();
            if equal {
                verify_equal_steps += 1;
            } else {
                violations.push(format!(
                    "{}: step {} ({}) verify mismatch vs fresh rebuild",
                    spec.name, timed.at, timed.event
                ));
            }
            last_full_report = Some(repaired_report);
            Some(equal)
        } else {
            None
        };

        log.push(Json::obj(vec![
            ("at", Json::Int(timed.at as i64)),
            ("event", Json::Str(kind.into())),
            ("n", Json::Int(repairable.node_count() as i64)),
            ("dirty", Json::Int(report.dirty_nodes as i64)),
            ("rows_recomputed", Json::Int(report.rows_recomputed as i64)),
            ("entries_patched", Json::Int(report.entries_patched as i64)),
            ("oracle_rebuilds", Json::Int(report.oracle_rebuilds as i64)),
            ("scheme_rebuilt", Json::Bool(report.scheme_rebuilt)),
            ("byte_identical", Json::Bool(byte_identical)),
            ("verify_equal", verify_equal.map_or(Json::Null, Json::Bool)),
        ]));
    }

    let applied = plan.len();
    let plan_refusals = repairable.stats().refusals;
    if plan_refusals != 0 {
        violations.push(format!(
            "{}: {plan_refusals} plan events were refused — generated plans must be refusal-free",
            spec.name
        ));
    }

    // End-of-horizon verification for cells too large to verify per step.
    let final_report = if spec.full_verify {
        last_full_report
    } else {
        let probe = verify::verify_scheme_sampled(
            repairable.graph(),
            repairable.scheme(),
            spec.probe_stride,
        )
        .map_err(|e| format!("{}: sampled probe: {e}", spec.name))?;
        if !(probe.all_delivered() && probe.is_shortest_path()) {
            violations.push(format!(
                "{}: sampled probe (stride {}) found lost or stretched routes after churn",
                spec.name, spec.probe_stride
            ));
        }
        Some(probe)
    };

    // Refusal probe: a refused delta must be counted and must not move a
    // single bit.
    let before = scheme_bytes(repairable.scheme())?;
    let refusal_ok = repairable.join(&[]).is_err()
        && repairable.stats().refusals == plan_refusals + 1
        && scheme_bytes(repairable.scheme())? == before;
    if !refusal_ok {
        violations.push(format!("{}: refused join was not counted or mutated state", spec.name));
    }

    let stats = repairable.stats();
    let oracle_stats = repairable.oracle().stats();
    let link_events = counts[0] + counts[1];
    let mean_dirty =
        if link_events == 0 { 0.0 } else { dirty_rows_total as f64 / link_events as f64 };
    progress(&format!(
        "churn {}: {} events on n0={} (final n={}), {} patched / {} rebuilt, \
         byte-identical {}/{}",
        spec.name,
        applied,
        n0,
        repairable.node_count(),
        stats.patches,
        stats.rebuilds,
        byte_identical_steps,
        applied
    ));

    let final_json = final_report.map_or(Json::Null, |r| {
        Json::obj(vec![
            ("delivered", Json::Int(r.delivered as i64)),
            ("failures", Json::Int(r.failures.len() as i64)),
            ("max_stretch", r.max_stretch().map_or(Json::Null, Json::Num)),
        ])
    });
    let cell = Json::obj(vec![
        ("name", Json::Str(spec.name.into())),
        ("graph", Json::Str(spec.graph_desc.into())),
        ("n0", Json::Int(n0 as i64)),
        ("n_final", Json::Int(repairable.node_count() as i64)),
        ("steps_planned", Json::Int(spec.steps as i64)),
        ("events_applied", Json::Int(applied as i64)),
        (
            "event_counts",
            Json::obj(vec![
                ("add_link", Json::Int(counts[0] as i64)),
                ("remove_link", Json::Int(counts[1] as i64)),
                ("join", Json::Int(counts[2] as i64)),
                ("leave", Json::Int(counts[3] as i64)),
            ]),
        ),
        (
            "repair",
            Json::obj(vec![
                ("patches", Json::Int(stats.patches as i64)),
                ("scheme_rebuilds", Json::Int(stats.rebuilds as i64)),
                ("entries_patched", Json::Int(stats.entries_patched as i64)),
                ("refusals", Json::Int(stats.refusals as i64)),
            ]),
        ),
        (
            "oracle",
            Json::obj(vec![
                ("repairs", Json::Int(oracle_stats.repairs as i64)),
                ("dirty_rows", Json::Int(oracle_stats.dirty_nodes as i64)),
                ("rows_recomputed", Json::Int(oracle_stats.rows_recomputed as i64)),
                ("fallback_rebuilds", Json::Int(oracle_stats.fallback_rebuilds as i64)),
            ]),
        ),
        (
            "staleness",
            Json::obj(vec![
                ("link_events", Json::Int(link_events as i64)),
                ("dirty_rows_total", Json::Int(dirty_rows_total as i64)),
                ("mean_dirty_rows_per_link_delta", Json::Num(mean_dirty)),
                ("max_dirty_fraction", Json::Num(max_dirty_fraction)),
            ]),
        ),
        (
            "bits",
            Json::obj(vec![
                ("initial", Json::Int(bits_initial as i64)),
                ("final", Json::Int(repairable.scheme().total_size_bits() as i64)),
            ]),
        ),
        (
            "checks",
            Json::obj(vec![
                ("byte_identical_steps", Json::Int(byte_identical_steps as i64)),
                (
                    "verify_equal_steps",
                    if spec.full_verify {
                        Json::Int(verify_equal_steps as i64)
                    } else {
                        Json::Null
                    },
                ),
                (
                    "probe_stride",
                    if spec.full_verify { Json::Null } else { Json::Int(spec.probe_stride as i64) },
                ),
                ("breakdown_reconciled", Json::Bool(breakdown_ok)),
                ("refusal_probe", Json::Bool(refusal_ok)),
            ]),
        ),
        ("final", final_json),
        ("log", Json::Arr(log)),
    ]);

    Ok(CellResult {
        cell,
        violations,
        patches: stats.patches,
        rebuilds: stats.rebuilds,
        membership_events: counts[2] + counts[3],
    })
}

/// The sweep: every cell at or below `opts.max_n`, through its full
/// churn horizon, with per-step byte-identity and verification checks.
///
/// # Errors
///
/// Returns a message when a plan event is refused or a rebuild fails —
/// both indicate a bug, not bad input. Check *failures* (byte drift,
/// verify mismatch) are reported as violations, not errors.
pub fn churn_sweep(
    opts: &ChurnOptions,
    mut progress: impl FnMut(&str),
) -> Result<ChurnOutcome, String> {
    let _span = ort_telemetry::span("churn.sweep");
    let defaults = ChurnConfig::default();
    let mut cells = Vec::new();
    let mut violations = Vec::new();
    let mut patches_total = 0u64;
    let mut rebuilds_total = 0u64;
    let mut membership_total = 0u64;
    for spec in cell_specs(opts.max_n) {
        let result = run_cell(&spec, &mut progress)?;
        cells.push(result.cell);
        violations.extend(result.violations);
        patches_total += result.patches;
        rebuilds_total += result.rebuilds;
        membership_total += result.membership_events;
    }
    if cells.is_empty() {
        violations.push(format!("no cells at --max-n {} (smallest cell is n=32)", opts.max_n));
    }
    if patches_total == 0 {
        violations
            .push("no edge delta was absorbed by in-place patching — the fast path never ran".into());
    }
    if rebuilds_total == 0 {
        violations.push("no event forced a whole-scheme rebuild — membership churn missing".into());
    }
    if membership_total == 0 && !cells.is_empty() {
        violations.push("plans scheduled no joins or leaves — weights are miswired".into());
    }

    // Per-step value-domain distributions across every cell, read back
    // from the (deterministic) step logs; plain local histograms keep
    // the report byte-identical with telemetry compiled out.
    let mut dirty_h = ort_telemetry::LocalHist::new();
    let mut patched_h = ort_telemetry::LocalHist::new();
    let empty: &[Json] = &[];
    for cell in &cells {
        for e in cell.get("log").and_then(Json::as_arr).unwrap_or(empty) {
            let n = e.get("n").and_then(Json::as_i64).unwrap_or(1).max(1) as u64;
            let dirty = e.get("dirty").and_then(Json::as_i64).unwrap_or(0) as u64;
            dirty_h.record(dirty * 1000 / n);
            patched_h
                .record(e.get("entries_patched").and_then(Json::as_i64).unwrap_or(0) as u64);
        }
    }
    let hists = [dirty_h.data("dirty_frac_x1000"), patched_h.data("entries_patched")];
    for h in &hists {
        progress(&format!("churn distribution {:<18}{}", h.name, h.percentile_line()));
    }

    let report = Json::obj(vec![
        ("suite", Json::Str("churn".into())),
        ("seed", Json::Int(CHURN_SEED as i64)),
        (
            "config",
            Json::obj(vec![
                ("max_n", Json::Int(opts.max_n as i64)),
                ("link_add_weight", Json::Int(defaults.link_add_weight as i64)),
                ("link_remove_weight", Json::Int(defaults.link_remove_weight as i64)),
                ("join_weight", Json::Int(defaults.join_weight as i64)),
                ("leave_weight", Json::Int(defaults.leave_weight as i64)),
                ("join_links", Json::Int(defaults.join_links as i64)),
            ]),
        ),
        ("cells", Json::Arr(cells)),
        (
            "hists",
            Json::Obj(
                hists
                    .iter()
                    .map(|h| (h.name.clone(), crate::report::hist_json(h)))
                    .collect(),
            ),
        ),
        ("violations", Json::Arr(violations.iter().map(|v| Json::Str(v.clone())).collect())),
        ("pass", Json::Bool(violations.is_empty())),
    ]);
    Ok(ChurnOutcome { report, violations })
}

/// Provenance for the churn results file.
#[must_use]
pub fn run_info(opts: &ChurnOptions) -> crate::manifest::RunInfo {
    crate::manifest::RunInfo::new(
        "churn",
        format!("max_n={}", opts.max_n),
        CHURN_SEED.to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smallest cell end to end: every step byte-identical and
    /// verify-equal, the refusal probe intact, and the report honest
    /// about it.
    #[test]
    fn smallest_cell_is_clean_and_deterministic() {
        let opts = ChurnOptions { max_n: 32, ..ChurnOptions::default() };
        let first = churn_sweep(&opts, |_| {}).expect("sweep");
        assert!(first.violations.is_empty(), "violations: {:?}", first.violations);
        let second = churn_sweep(&opts, |_| {}).expect("sweep");
        assert_eq!(first.report.pretty(), second.report.pretty(), "sweep must be deterministic");
        let cells = first.report.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        let applied = cell.get("events_applied").and_then(Json::as_i64).expect("applied");
        assert!(applied > 0);
        let checks = cell.get("checks").expect("checks");
        assert_eq!(checks.get("byte_identical_steps").and_then(Json::as_i64), Some(applied));
        assert_eq!(checks.get("verify_equal_steps").and_then(Json::as_i64), Some(applied));
        assert!(matches!(checks.get("refusal_probe"), Some(Json::Bool(true))));
    }
}
