//! `ort` — command-line driver for the optimal-routing-tables library.
//!
//! ```text
//! ort certify <n> <seed>                  check Lemmas 1-3 + compressibility
//! ort build   <scheme> <n> <seed>         build a scheme, print size & stretch
//! ort route   <scheme> <n> <seed> <s> <t> route one message, print the path
//! ort profile <scheme> [--n N] [--seed S] instrumented run: spans + bit accounting
//! ort bench-gate [--record]               bit-drift + perf-regression gate
//! ort conformance [out.json]              run the full conformance suite
//! ort resilience  [--verbose] [out.json]  fault-intensity sweep over all schemes
//! ort schemes                             list available schemes
//! ```
//!
//! Graphs are seeded `G(n, 1/2)` samples, so every invocation is
//! reproducible. Set `ORT_TELEMETRY=summary` (or `jsonl:<path>`,
//! `folded:<path>`) to attach telemetry sinks to any subcommand; every
//! exit path — success or error — flushes them.

use std::process::ExitCode;

use optimal_routing_tables::conformance::json::Json;
use optimal_routing_tables::conformance::registry::SchemeId;
use optimal_routing_tables::graphs::random_props::RandomnessReport;
use optimal_routing_tables::graphs::{generators, Graph};
use optimal_routing_tables::kolmogorov::deficiency::CompressorSuite;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::verify;
use optimal_routing_tables::{gate, profile};

fn build_scheme(name: &str, g: &Graph) -> Result<Box<dyn RoutingScheme>, String> {
    SchemeId::from_name(name)
        .ok_or_else(|| format!("unknown scheme '{name}'; try `ort schemes`"))?
        .build(g)
        .map_err(|e| e.to_string())
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  ort certify <n> <seed>");
    eprintln!("  ort build   <scheme> <n> <seed>");
    eprintln!("  ort route   <scheme> <n> <seed> <src> <dst>");
    eprintln!("  ort profile <scheme> [--n N] [--seed S]  (default n=128 seed=1)");
    eprintln!("  ort bench-gate [--record] [--baseline p] [--bench p]");
    eprintln!("  ort save    <scheme> <n> <seed> <file>   (snapshot-capable schemes)");
    eprintln!("  ort load    <file> <src> <dst>");
    eprintln!("  ort conformance [out.json]               (default results/CONFORMANCE.json)");
    eprintln!("  ort resilience [--verbose] [out.json]    (default results/RESILIENCE.json)");
    eprintln!("  ort schemes");
    ExitCode::FAILURE
}

fn snapshot_kind(name: &str) -> Option<optimal_routing_tables::routing::snapshot::SchemeKind> {
    SchemeId::from_name(name).and_then(SchemeId::snapshot_kind)
}

/// `--flag value` pairs and the remaining positionals, in order.
type ParsedArgs = (Vec<(String, String)>, Vec<String>);

/// Pulls `--flag value` out of `args`, returning the remaining
/// positionals. Unknown `--flags` are an error.
fn parse_flags(args: &[String], flags: &[&str]) -> Result<ParsedArgs, String> {
    let mut values = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !flags.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            values.push((name.to_string(), v.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((values, positional))
}

/// Packs a snapshot to bytes: 8-byte little-endian bit count, then the
/// bits MSB-first within each byte.
fn bits_to_bytes(bits: &optimal_routing_tables::bitio::BitVec) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + bits.len() / 8 + 1);
    out.extend_from_slice(&(bits.len() as u64).to_le_bytes());
    let mut acc = 0u8;
    let mut filled = 0u8;
    for b in bits.iter() {
        acc = (acc << 1) | u8::from(b);
        filled += 1;
        if filled == 8 {
            out.push(acc);
            acc = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        out.push(acc << (8 - filled));
    }
    out
}

fn bytes_to_bits(data: &[u8]) -> Result<optimal_routing_tables::bitio::BitVec, String> {
    if data.len() < 8 {
        return Err("snapshot file too short".into());
    }
    let len = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
    if data.len() < 8 + len.div_ceil(8) {
        return Err("snapshot file truncated".into());
    }
    let mut bits = optimal_routing_tables::bitio::BitVec::with_capacity(len);
    for i in 0..len {
        let byte = data[8 + i / 8];
        bits.push((byte >> (7 - (i % 8))) & 1 == 1);
    }
    Ok(bits)
}

/// The sweep behind `ort resilience`: every registry scheme, bare and
/// wrapped in the resilient detour adapter, against the same seeded
/// link-fault loads of increasing intensity on three topologies. Returns
/// the report and the acceptance violations (empty ⇒ exit 0).
fn resilience_sweep(
    verbose: bool,
    mut progress: impl FnMut(&str),
) -> Result<(Json, Vec<String>), String> {
    use optimal_routing_tables::graphs::paths::Apsp;
    use optimal_routing_tables::graphs::ports::PortAssignment;
    use optimal_routing_tables::routing::schemes::resilient::ResilientScheme;
    use optimal_routing_tables::simnet::faults::FaultPlan;
    use optimal_routing_tables::simnet::resilience::{
        acceptance_violations, resilience_hop_limit, run_cell_detailed, ResilienceConfig,
        SweepCell,
    };
    use optimal_routing_tables::simnet::FailureBreakdown;

    const FAULT_SEED: u64 = 13;
    const INTENSITIES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

    fn breakdown(b: &FailureBreakdown) -> Json {
        Json::Obj(b.entries().iter().map(|&(k, v)| (k.to_string(), Json::Int(v as i64))).collect())
    }
    fn opt_num(x: Option<f64>) -> Json {
        x.map_or(Json::Null, Json::Num)
    }

    let cfg = ResilienceConfig::default();
    let topologies: Vec<(&str, Graph)> = vec![
        ("gnp32", generators::gnp_half(32, 3)),
        ("grid6x6", generators::grid(6, 6)),
        ("path24", generators::path(24)),
    ];
    let mut cells: Vec<SweepCell> = Vec::new();
    let mut refusals: Vec<Json> = Vec::new();
    let mut loads: Vec<Json> = Vec::new();
    for (tname, g) in &topologies {
        let apsp = Apsp::compute(g);
        let pa = PortAssignment::sorted(g);
        // One shared plan per (topology, intensity): every scheme faces the
        // same broken links, so cells are comparable.
        let plans: Vec<FaultPlan> = INTENSITIES
            .iter()
            .enumerate()
            .map(|(i, &x)| FaultPlan::random_link_faults(&pa, x, FAULT_SEED + i as u64))
            .collect();
        for (i, &intensity) in INTENSITIES.iter().enumerate() {
            loads.push(Json::obj(vec![
                ("topology", Json::Str((*tname).into())),
                ("intensity", Json::Num(intensity)),
                ("seed", Json::Int((FAULT_SEED + i as u64) as i64)),
                ("links_down", Json::Int(plans[i].len() as i64)),
            ]));
        }
        for id in SchemeId::ALL {
            let bare = match id.build(g) {
                Ok(s) => s,
                Err(e) => {
                    progress(&format!("{tname}/{}: refused ({e})", id.name()));
                    refusals.push(Json::obj(vec![
                        ("topology", Json::Str((*tname).into())),
                        ("scheme", Json::Str(id.name().into())),
                        ("reason", Json::Str(e.to_string())),
                    ]));
                    continue;
                }
            };
            let wrapped = ResilientScheme::wrap(id.build(g).expect("built once already"));
            progress(&format!("{tname}/{}: sweeping {} intensities", id.name(), INTENSITIES.len()));
            for (i, &intensity) in INTENSITIES.iter().enumerate() {
                for (is_wrapped, scheme) in
                    [(false, bare.as_ref()), (true, &wrapped as &dyn RoutingScheme)]
                {
                    let (metrics, hop_stats, round_report) =
                        run_cell_detailed(scheme, &apsp, &plans[i], &cfg)
                            .map_err(|e| e.to_string())?;
                    if verbose {
                        println!(
                            "{tname}/{}{} at intensity {intensity}:",
                            id.name(),
                            if is_wrapped { " (wrapped)" } else { "" }
                        );
                        println!("  hop-level face:");
                        println!("{hop_stats}");
                        println!("  round face:");
                        println!("{round_report}");
                    }
                    cells.push(SweepCell {
                        topology: (*tname).into(),
                        n: g.node_count(),
                        intensity,
                        scheme: id.name().into(),
                        multipath: id == SchemeId::FullInformation,
                        wrapped: is_wrapped,
                        metrics,
                    });
                }
            }
        }
    }
    let violations = acceptance_violations(&cells);

    let cell_json: Vec<Json> = cells
        .iter()
        .map(|c| {
            // Stretch inflation is relative to the same scheme's fault-free
            // run on the same topology.
            let baseline = cells
                .iter()
                .find(|b| {
                    b.topology == c.topology
                        && b.scheme == c.scheme
                        && b.wrapped == c.wrapped
                        && b.intensity == 0.0
                })
                .and_then(|b| b.metrics.mean_stretch);
            let inflation = match (c.metrics.mean_stretch, baseline) {
                (Some(s), Some(b)) if b > 0.0 => Some(s / b),
                _ => None,
            };
            Json::obj(vec![
                ("topology", Json::Str(c.topology.clone())),
                ("n", Json::Int(c.n as i64)),
                ("intensity", Json::Num(c.intensity)),
                ("scheme", Json::Str(c.scheme.clone())),
                ("wrapped", Json::Bool(c.wrapped)),
                ("multipath", Json::Bool(c.multipath)),
                ("pairs", Json::Int(c.metrics.pairs as i64)),
                ("delivered", Json::Int(c.metrics.delivered as i64)),
                ("delivery_ratio", Json::Num(c.metrics.delivery_ratio())),
                ("reachable_delivery_ratio", Json::Num(c.metrics.reachable_delivery_ratio())),
                ("partition_detected", Json::Int(c.metrics.unreachable_failed as i64)),
                ("avoidable_failed", Json::Int(c.metrics.avoidable_failed as i64)),
                ("failures", breakdown(&c.metrics.failures)),
                ("reroutes", Json::Int(c.metrics.reroutes as i64)),
                ("mean_stretch", opt_num(c.metrics.mean_stretch)),
                ("stretch_inflation", opt_num(inflation)),
                ("rounds_to_drain", Json::Int(i64::from(c.metrics.rounds_to_drain))),
                ("round_delivered", Json::Int(c.metrics.round_delivered as i64)),
                ("round_failures", breakdown(&c.metrics.round_failures)),
                ("round_stranded", Json::Int(c.metrics.round_stranded as i64)),
                ("retries", Json::Int(c.metrics.retries as i64)),
                ("round_reroutes", Json::Int(c.metrics.round_reroutes as i64)),
                ("mean_latency", opt_num(c.metrics.mean_latency)),
                ("max_queue", Json::Int(c.metrics.max_queue as i64)),
            ])
        })
        .collect();

    let json = Json::obj(vec![
        ("suite", Json::Str("resilience".into())),
        (
            "config",
            Json::obj(vec![
                ("intensities", Json::Arr(INTENSITIES.iter().map(|&x| Json::Num(x)).collect())),
                ("fault_seed", Json::Int(FAULT_SEED as i64)),
                ("capacity", Json::Int(cfg.capacity as i64)),
                ("ttl", cfg.ttl.map_or(Json::Null, |t| Json::Int(i64::from(t)))),
                (
                    "retry",
                    Json::obj(vec![
                        ("max_retries", Json::Int(i64::from(cfg.retry.max_retries))),
                        ("backoff_base", Json::Int(i64::from(cfg.retry.backoff_base))),
                        ("backoff_cap", Json::Int(i64::from(cfg.retry.backoff_cap))),
                    ]),
                ),
                ("hop_limit_n32", Json::Int(resilience_hop_limit(32) as i64)),
            ]),
        ),
        (
            "topologies",
            Json::Arr(
                topologies
                    .iter()
                    .map(|(name, g)| {
                        Json::obj(vec![
                            ("name", Json::Str((*name).into())),
                            ("n", Json::Int(g.node_count() as i64)),
                            ("edges", Json::Int(g.edge_count() as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fault_loads", Json::Arr(loads)),
        ("refusals", Json::Arr(refusals)),
        ("cells", Json::Arr(cell_json)),
        ("violations", Json::Arr(violations.iter().map(|v| Json::Str(v.clone())).collect())),
        ("pass", Json::Bool(violations.is_empty())),
    ]);
    Ok((json, violations))
}

fn parse<T: std::str::FromStr>(s: Option<&String>, what: &str) -> Result<T, String> {
    s.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("schemes") => {
            for id in SchemeId::ALL {
                println!("{}", id.name());
            }
            Ok(())
        }
        Some("profile") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let (flags, positional) = parse_flags(&args[2..], &["n", "seed"])?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument '{}'", positional[0]));
            }
            let mut n = 128usize;
            let mut seed = 1u64;
            for (flag, value) in flags {
                match flag.as_str() {
                    "n" => n = value.parse().map_err(|_| "invalid --n")?,
                    "seed" => seed = value.parse().map_err(|_| "invalid --seed")?,
                    _ => unreachable!("parse_flags filters"),
                }
            }
            let report = profile::run_profile(&name, n, seed)?;
            print!("{}", report.text);
            Ok(())
        }
        Some("bench-gate") => {
            let mut record = false;
            let mut baseline = gate::DEFAULT_BASELINE.to_string();
            let mut bench = Some(gate::DEFAULT_BENCH.to_string());
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--record" => record = true,
                    "--baseline" => {
                        baseline = it.next().ok_or("--baseline needs a path")?.clone();
                    }
                    "--bench" => {
                        let p = it.next().ok_or("--bench needs a path (or 'none')")?;
                        bench = (p != "none").then(|| p.clone());
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            if record {
                gate::record(&gate::GateConfig::default(), &baseline)?;
                println!("wrote {baseline}");
                return Ok(());
            }
            let report = gate::check(&baseline, bench.as_deref())?;
            for line in &report.lines {
                println!("{line}");
            }
            if report.pass() {
                println!("bench-gate: PASS");
                Ok(())
            } else {
                for f in &report.failures {
                    eprintln!("regression: {f}");
                }
                Err(format!("bench-gate: FAIL ({} regressions)", report.failures.len()))
            }
        }
        Some("certify") => {
            let n: usize = parse(args.get(1), "n")?;
            let seed: u64 = parse(args.get(2), "seed")?;
            let g = generators::gnp_half(n, seed);
            let report = RandomnessReport::evaluate(&g, 3.0);
            let suite = CompressorSuite::standard();
            println!("G({n}, 1/2) seed {seed}: {} edges", g.edge_count());
            println!("lemma 1 (degree ±{:.1} vs scale {:.1}): {}",
                report.degree.max_deviation, report.degree.lemma_scale, report.degree.holds);
            println!("lemma 2 (diameter 2): {} (diameter = {:?})", report.diameter_two, report.diameter);
            println!(
                "lemma 3 (dominating prefix {:?} vs budget {:.1}): {}",
                report.cover.max_prefix, report.cover.budget, report.cover.holds
            );
            println!("deficiency estimate: {} bits", suite.graph_deficiency(&g));
            println!(
                "verdict: {}",
                if report.all_hold() { "operationally Kolmogorov random — all theorems apply" }
                else { "NOT random enough — compact schemes may refuse this graph" }
            );
            Ok(())
        }
        Some("build") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            println!("{name} on G({n}, 1/2) seed {seed} [model {}]", scheme.model());
            println!("total size: {} bits ({:.2} bits/n²)",
                scheme.total_size_bits(),
                scheme.total_size_bits() as f64 / (n * n) as f64);
            let sizes: Vec<usize> = (0..n).map(|u| scheme.charged_size_bits(u)).collect();
            println!(
                "per node: min {} / median {} / max {}",
                sizes.iter().min().unwrap(),
                {
                    let mut s = sizes.clone();
                    s.sort_unstable();
                    s[n / 2]
                },
                sizes.iter().max().unwrap()
            );
            let report = verify::verify_scheme_sampled(&g, scheme.as_ref(), if n >= 256 { 7 } else { 1 })
                .map_err(|e| e.to_string())?;
            println!(
                "verification: {} pairs, {} failures, max stretch {:?}",
                report.delivered,
                report.failures.len(),
                report.max_stretch()
            );
            Ok(())
        }
        Some("route") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let s: usize = parse(args.get(4), "src")?;
            let t: usize = parse(args.get(5), "dst")?;
            if s >= n || t >= n {
                return Err(format!("node ids must be below n = {n}"));
            }
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            let path = verify::route_pair(scheme.as_ref(), s, t, 4 * n)
                .map_err(|e| e.to_string())?;
            println!("{s} → {t} via {name}: {path:?} ({} hops)", path.len() - 1);
            Ok(())
        }
        Some("save") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let file = args.get(4).ok_or("missing file")?;
            let kind = snapshot_kind(&name)
                .ok_or_else(|| format!("scheme '{name}' does not support snapshots"))?;
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            let snap = optimal_routing_tables::routing::snapshot::save(kind, scheme.as_ref())
                .map_err(|e| e.to_string())?;
            std::fs::write(file, bits_to_bytes(&snap)).map_err(|e| e.to_string())?;
            println!("wrote {} ({} bits of snapshot, {} bits of tables)",
                file, snap.len(), scheme.total_size_bits());
            Ok(())
        }
        Some("load") => {
            let file = args.get(1).ok_or("missing file")?;
            let s: usize = parse(args.get(2), "src")?;
            let t: usize = parse(args.get(3), "dst")?;
            let data = std::fs::read(file).map_err(|e| e.to_string())?;
            let bits = bytes_to_bits(&data)?;
            let scheme = optimal_routing_tables::routing::snapshot::load(&bits)
                .map_err(|e| e.to_string())?;
            let n = scheme.node_count();
            if s >= n || t >= n {
                return Err(format!("node ids must be below n = {n}"));
            }
            let path = verify::route_pair(scheme.as_ref(), s, t, 4 * n)
                .map_err(|e| e.to_string())?;
            println!(
                "loaded scheme on {n} nodes [model {}]; {s} → {t}: {path:?}",
                scheme.model()
            );
            Ok(())
        }
        Some("conformance") => {
            use optimal_routing_tables::conformance::report;
            let out = args
                .get(1)
                .map_or("results/CONFORMANCE.json", String::as_str);
            let config = report::Config::default();
            let result = report::run(&config, |line| println!("{line}"))?;
            let json = report::to_json(&result).pretty();
            if let Some(dir) = std::path::Path::new(out).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                }
            }
            std::fs::write(out, &json).map_err(|e| e.to_string())?;
            println!("wrote {out}");
            if result.pass() {
                println!("conformance: PASS");
                Ok(())
            } else {
                for v in &result.violations {
                    eprintln!("violation: {v}");
                }
                Err(format!("conformance: FAIL ({} violations)", result.violations.len()))
            }
        }
        Some("resilience") => {
            let verbose = args.iter().any(|a| a == "--verbose");
            let out = args[1..]
                .iter()
                .find(|a| !a.starts_with("--"))
                .map_or("results/RESILIENCE.json", String::as_str);
            let (json, violations) = resilience_sweep(verbose, |line| println!("{line}"))?;
            if let Some(dir) = std::path::Path::new(out).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                }
            }
            std::fs::write(out, json.pretty()).map_err(|e| e.to_string())?;
            println!("wrote {out}");
            if violations.is_empty() {
                println!("resilience: PASS");
                Ok(())
            } else {
                for v in &violations {
                    eprintln!("violation: {v}");
                }
                Err(format!("resilience: FAIL ({} violations)", violations.len()))
            }
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

fn main() -> ExitCode {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    let code = match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One error shape for every subcommand: `ort <cmd>: error: …`
            // on stderr, non-zero exit. An empty message means usage was
            // already printed.
            if !e.is_empty() {
                eprintln!("ort {cmd}: error: {e}");
            }
            ExitCode::FAILURE
        }
    };
    // Telemetry sinks flush on every exit path, so a failing run still
    // ships its spans and counters (summary on stderr, files otherwise).
    optimal_routing_tables::telemetry::flush();
    code
}
