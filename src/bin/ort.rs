//! `ort` — command-line driver for the optimal-routing-tables library.
//!
//! ```text
//! ort certify <n> <seed>                  check Lemmas 1-3 + compressibility
//! ort build   <scheme> <n> <seed>         build a scheme, print size & stretch
//! ort route   <scheme> <n> <seed> <s> <t> route one message, print the path
//! ort profile <scheme> [--n N] [--seed S] [--mem]
//!                                         instrumented run: spans + bit accounting,
//!                                         --mem audits measured vs claimed memory
//! ort bench [--out p] [--max-n N]         APSP engine snapshot (dense + sparse)
//! ort bench-build [--out p] [--max-n N] [--schemes a,b]
//!                                         scheme-construction snapshot (banded vs full)
//! ort bench-gate [--record] [--mem]       bit-drift + perf-regression gate
//!                                         (--mem adds the allocator-audit probes)
//! ort conformance [out.json]              run the full conformance suite
//! ort resilience  [--verbose] [out.json]  fault-intensity sweep over all schemes
//! ort churn [--out p] [--max-n N]         continuous-churn repair sweep

//! ort trace <scheme> --n N --seed S [--src A --dst B | --worst]
//!                                         capture one walk, explain its stretch
//! ort report [--dir d] [--out p] [--baseline p]
//!                                         cross-run regression observatory
//! ort schemes                             list available schemes
//! ort --version                           build info (features, telemetry state)
//! ```
//!
//! Graphs are seeded `G(n, 1/2)` samples, so every invocation is
//! reproducible. Set `ORT_TELEMETRY=summary` (or `jsonl:<path>`,
//! `folded:<path>`) to attach telemetry sinks to any subcommand; every
//! exit path — success or error — flushes them.

use std::process::ExitCode;

use optimal_routing_tables::conformance::registry::SchemeId;
use optimal_routing_tables::graphs::random_props::RandomnessReport;
use optimal_routing_tables::graphs::{generators, Graph};
use optimal_routing_tables::kolmogorov::deficiency::CompressorSuite;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::verify;
use optimal_routing_tables::{gate, manifest, profile};

fn build_scheme(name: &str, g: &Graph) -> Result<Box<dyn RoutingScheme>, String> {
    SchemeId::from_name(name)
        .ok_or_else(|| format!("unknown scheme '{name}'; try `ort schemes`"))?
        .build(g)
        .map_err(|e| e.to_string())
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  ort certify <n> <seed>");
    eprintln!("  ort build   <scheme> <n> <seed>");
    eprintln!("  ort route   <scheme> <n> <seed> <src> <dst>");
    eprintln!("  ort profile <scheme> [--n N] [--seed S] [--mem]  (default n=128 seed=1)");
    eprintln!("  ort bench   [--out p] [--max-n N]        (default results/BENCH_apsp.json)");
    eprintln!("  ort bench-build [--out p] [--max-n N] [--schemes a,b]");
    eprintln!("                                           (default results/BENCH_build.json)");
    eprintln!("  ort bench-gate [--record] [--mem] [--baseline p] [--bench p] [--build p] [--churn p]");
    eprintln!("  ort save    <scheme> <n> <seed> <file>   (snapshot-capable schemes)");
    eprintln!("  ort load    <file> <src> <dst>");
    eprintln!("  ort conformance [out.json]               (default results/CONFORMANCE.json)");
    eprintln!("  ort resilience [--verbose] [out.json]    (default results/RESILIENCE.json)");
    eprintln!("  ort churn   [--out p] [--max-n N]        (default results/CHURN.json, max-n 1024)");
    eprintln!("  ort trace   <scheme> [--n N] [--seed S] (--src A --dst B | --worst)");
    eprintln!("  ort report  [--dir d] [--out p] [--baseline p]");
    eprintln!("                                           (default results/ -> results/REPORT.json)");
    eprintln!("  ort schemes");
    eprintln!("  ort --version");
    ExitCode::FAILURE
}

fn snapshot_kind(name: &str) -> Option<optimal_routing_tables::routing::snapshot::SchemeKind> {
    SchemeId::from_name(name).and_then(SchemeId::snapshot_kind)
}

/// `--flag value` pairs and the remaining positionals, in order.
type ParsedArgs = (Vec<(String, String)>, Vec<String>);

/// Pulls `--flag value` out of `args`, returning the remaining
/// positionals. Unknown `--flags` are an error.
fn parse_flags(args: &[String], flags: &[&str]) -> Result<ParsedArgs, String> {
    let mut values = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !flags.contains(&name) {
                return Err(format!("unknown flag --{name}"));
            }
            let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            values.push((name.to_string(), v.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((values, positional))
}

/// Packs a snapshot to bytes: 8-byte little-endian bit count, then the
/// bits MSB-first within each byte.
fn bits_to_bytes(bits: &optimal_routing_tables::bitio::BitVec) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + bits.len() / 8 + 1);
    out.extend_from_slice(&(bits.len() as u64).to_le_bytes());
    let mut acc = 0u8;
    let mut filled = 0u8;
    for b in bits.iter() {
        acc = (acc << 1) | u8::from(b);
        filled += 1;
        if filled == 8 {
            out.push(acc);
            acc = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        out.push(acc << (8 - filled));
    }
    out
}

fn bytes_to_bits(data: &[u8]) -> Result<optimal_routing_tables::bitio::BitVec, String> {
    if data.len() < 8 {
        return Err("snapshot file too short".into());
    }
    let len = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
    if data.len() < 8 + len.div_ceil(8) {
        return Err("snapshot file truncated".into());
    }
    let mut bits = optimal_routing_tables::bitio::BitVec::with_capacity(len);
    for i in 0..len {
        let byte = data[8 + i / 8];
        bits.push((byte >> (7 - (i % 8))) & 1 == 1);
    }
    Ok(bits)
}

fn parse<T: std::str::FromStr>(s: Option<&String>, what: &str) -> Result<T, String> {
    s.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("schemes") => {
            for id in SchemeId::ALL {
                println!("{}", id.name());
            }
            Ok(())
        }
        Some("--version" | "version") => {
            println!("{}", manifest::build_info());
            Ok(())
        }
        Some("report") => {
            use optimal_routing_tables::report;
            let (flags, positional) = parse_flags(&args[1..], &["dir", "out", "baseline"])?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument '{}'", positional[0]));
            }
            let mut opts = report::ReportOptions::default();
            for (flag, value) in flags {
                match flag.as_str() {
                    "dir" => opts.dir = value,
                    "out" => opts.out = value,
                    "baseline" => opts.baseline = Some(value),
                    _ => unreachable!("parse_flags filters"),
                }
            }
            let outcome = report::run(&opts)?;
            print!("{}", outcome.table);
            println!("wrote {}", opts.out);
            if outcome.problems.is_empty() {
                println!("report: PASS");
                Ok(())
            } else {
                for p in &outcome.problems {
                    eprintln!("regression: {p}");
                }
                Err(format!("report: FAIL ({} regressions)", outcome.problems.len()))
            }
        }
        Some("profile") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            // `--mem` is a bare flag; strip it before the `--flag value`
            // parser sees the rest.
            let mem = args[2..].iter().any(|a| a == "--mem");
            let rest: Vec<String> = args[2..].iter().filter(|a| *a != "--mem").cloned().collect();
            let (flags, positional) = parse_flags(&rest, &["n", "seed"])?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument '{}'", positional[0]));
            }
            let mut n = 128usize;
            let mut seed = 1u64;
            for (flag, value) in flags {
                match flag.as_str() {
                    "n" => n = value.parse().map_err(|_| "invalid --n")?,
                    "seed" => seed = value.parse().map_err(|_| "invalid --seed")?,
                    _ => unreachable!("parse_flags filters"),
                }
            }
            let report = if mem {
                profile::run_profile_mem(&name, n, seed)?
            } else {
                profile::run_profile(&name, n, seed)?
            };
            print!("{}", report.text);
            Ok(())
        }
        Some("bench") => {
            use optimal_routing_tables::bench;
            let (flags, positional) = parse_flags(&args[1..], &["out", "max-n"])?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument '{}'", positional[0]));
            }
            let mut opts = bench::BenchOptions::default();
            for (flag, value) in flags {
                match flag.as_str() {
                    "out" => opts.out_path = value,
                    "max-n" => opts.max_n = value.parse().map_err(|_| "invalid --max-n")?,
                    _ => unreachable!("parse_flags filters"),
                }
            }
            let out = opts.out_path.clone();
            let records = bench::run(&opts)?;
            print!("{}", bench::summary(&records, &out));
            Ok(())
        }
        Some("bench-build") => {
            use optimal_routing_tables::bench_build;
            let (flags, positional) = parse_flags(&args[1..], &["out", "max-n", "schemes"])?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument '{}'", positional[0]));
            }
            let mut opts = bench_build::BenchBuildOptions::default();
            for (flag, value) in flags {
                match flag.as_str() {
                    "out" => opts.out_path = value,
                    "max-n" => opts.max_n = value.parse().map_err(|_| "invalid --max-n")?,
                    "schemes" => {
                        opts.schemes = value
                            .split(',')
                            .map(|name| {
                                SchemeId::from_name(name.trim()).ok_or_else(|| {
                                    format!("unknown scheme '{name}'; try `ort schemes`")
                                })
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    _ => unreachable!("parse_flags filters"),
                }
            }
            let out = opts.out_path.clone();
            let records = bench_build::run(&opts)?;
            print!("{}", bench_build::summary(&records, &out));
            Ok(())
        }
        Some("bench-gate") => {
            let mut record = false;
            let mut mem = false;
            let mut baseline = gate::DEFAULT_BASELINE.to_string();
            let mut bench = Some(gate::DEFAULT_BENCH.to_string());
            let mut build = Some(gate::DEFAULT_BUILD_BENCH.to_string());
            let mut churn = Some(gate::DEFAULT_CHURN.to_string());
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--record" => record = true,
                    "--mem" => mem = true,
                    "--baseline" => {
                        baseline = it.next().ok_or("--baseline needs a path")?.clone();
                    }
                    "--bench" => {
                        let p = it.next().ok_or("--bench needs a path (or 'none')")?;
                        bench = (p != "none").then(|| p.clone());
                    }
                    "--build" => {
                        let p = it.next().ok_or("--build needs a path (or 'none')")?;
                        build = (p != "none").then(|| p.clone());
                    }
                    "--churn" => {
                        let p = it.next().ok_or("--churn needs a path (or 'none')")?;
                        churn = (p != "none").then(|| p.clone());
                    }
                    other => return Err(format!("unknown argument '{other}'")),
                }
            }
            if record {
                gate::record(&gate::GateConfig::default(), &baseline)?;
                println!("wrote {baseline}");
                return Ok(());
            }
            let report = gate::check_all(
                &baseline,
                bench.as_deref(),
                build.as_deref(),
                churn.as_deref(),
                mem,
            )?;
            for line in &report.lines {
                println!("{line}");
            }
            if report.pass() {
                println!("bench-gate: PASS");
                Ok(())
            } else {
                for f in &report.failures {
                    eprintln!("regression: {f}");
                }
                // A gate failure is exactly the moment a post-mortem
                // matters: freeze the flight recorder's recent history.
                optimal_routing_tables::telemetry::recorder::anomaly(
                    "bench_gate_failure",
                    report.failures.len() as u64,
                    0,
                );
                Err(format!("bench-gate: FAIL ({} regressions)", report.failures.len()))
            }
        }
        Some("certify") => {
            let n: usize = parse(args.get(1), "n")?;
            let seed: u64 = parse(args.get(2), "seed")?;
            let g = generators::gnp_half(n, seed);
            let report = RandomnessReport::evaluate(&g, 3.0);
            let suite = CompressorSuite::standard();
            println!("G({n}, 1/2) seed {seed}: {} edges", g.edge_count());
            println!("lemma 1 (degree ±{:.1} vs scale {:.1}): {}",
                report.degree.max_deviation, report.degree.lemma_scale, report.degree.holds);
            println!("lemma 2 (diameter 2): {} (diameter = {:?})", report.diameter_two, report.diameter);
            println!(
                "lemma 3 (dominating prefix {:?} vs budget {:.1}): {}",
                report.cover.max_prefix, report.cover.budget, report.cover.holds
            );
            println!("deficiency estimate: {} bits", suite.graph_deficiency(&g));
            println!(
                "verdict: {}",
                if report.all_hold() { "operationally Kolmogorov random — all theorems apply" }
                else { "NOT random enough — compact schemes may refuse this graph" }
            );
            Ok(())
        }
        Some("build") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            println!("{name} on G({n}, 1/2) seed {seed} [model {}]", scheme.model());
            println!("total size: {} bits ({:.2} bits/n²)",
                scheme.total_size_bits(),
                scheme.total_size_bits() as f64 / (n * n) as f64);
            let sizes: Vec<usize> = (0..n).map(|u| scheme.charged_size_bits(u)).collect();
            println!(
                "per node: min {} / median {} / max {}",
                sizes.iter().min().unwrap(),
                {
                    let mut s = sizes.clone();
                    s.sort_unstable();
                    s[n / 2]
                },
                sizes.iter().max().unwrap()
            );
            let report = verify::verify_scheme_sampled(&g, scheme.as_ref(), if n >= 256 { 7 } else { 1 })
                .map_err(|e| e.to_string())?;
            println!(
                "verification: {} pairs, {} failures, max stretch {:?}",
                report.delivered,
                report.failures.len(),
                report.max_stretch()
            );
            Ok(())
        }
        Some("route") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let s: usize = parse(args.get(4), "src")?;
            let t: usize = parse(args.get(5), "dst")?;
            if s >= n || t >= n {
                return Err(format!("node ids must be below n = {n}"));
            }
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            let path = verify::route_pair(scheme.as_ref(), s, t, 4 * n)
                .map_err(|e| e.to_string())?;
            println!("{s} → {t} via {name}: {path:?} ({} hops)", path.len() - 1);
            Ok(())
        }
        Some("save") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let file = args.get(4).ok_or("missing file")?;
            let kind = snapshot_kind(&name)
                .ok_or_else(|| format!("scheme '{name}' does not support snapshots"))?;
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            let snap = optimal_routing_tables::routing::snapshot::save(kind, scheme.as_ref())
                .map_err(|e| e.to_string())?;
            std::fs::write(file, bits_to_bytes(&snap)).map_err(|e| e.to_string())?;
            println!("wrote {} ({} bits of snapshot, {} bits of tables)",
                file, snap.len(), scheme.total_size_bits());
            Ok(())
        }
        Some("load") => {
            let file = args.get(1).ok_or("missing file")?;
            let s: usize = parse(args.get(2), "src")?;
            let t: usize = parse(args.get(3), "dst")?;
            let data = std::fs::read(file).map_err(|e| e.to_string())?;
            let bits = bytes_to_bits(&data)?;
            let scheme = optimal_routing_tables::routing::snapshot::load(&bits)
                .map_err(|e| e.to_string())?;
            let n = scheme.node_count();
            if s >= n || t >= n {
                return Err(format!("node ids must be below n = {n}"));
            }
            let path = verify::route_pair(scheme.as_ref(), s, t, 4 * n)
                .map_err(|e| e.to_string())?;
            println!(
                "loaded scheme on {n} nodes [model {}]; {s} → {t}: {path:?}",
                scheme.model()
            );
            Ok(())
        }
        Some("conformance") => {
            use optimal_routing_tables::conformance::report;
            let out = args
                .get(1)
                .map_or("results/CONFORMANCE.json", String::as_str);
            let config = report::Config::default();
            let result = report::run(&config, |line| println!("{line}"))?;
            let join = |xs: &[u64]| {
                xs.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
            };
            let info = manifest::RunInfo::new(
                "conformance",
                format!(
                    "exhaustive_n={} sweep_sizes={} fuzz_per_kind={} bound_sizes={}",
                    config.exhaustive_n,
                    config.sweep_sizes.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
                    config.fuzz_per_kind,
                    config.bound_sizes.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
                ),
                format!("{},{}", join(&config.sweep_seeds), join(&config.bound_seeds)),
            );
            manifest::write_stamped(out, &report::to_json(&result), &info)?;
            println!("wrote {out}");
            if result.pass() {
                println!("conformance: PASS");
                Ok(())
            } else {
                for v in &result.violations {
                    eprintln!("violation: {v}");
                }
                Err(format!("conformance: FAIL ({} violations)", result.violations.len()))
            }
        }
        Some("resilience") => {
            use optimal_routing_tables::sweep;
            let verbose = args.iter().any(|a| a == "--verbose");
            let out = args[1..]
                .iter()
                .find(|a| !a.starts_with("--"))
                .map_or("results/RESILIENCE.json", String::as_str);
            let outcome = sweep::resilience_sweep(verbose, |line| println!("{line}"))?;
            manifest::write_stamped(out, &outcome.report, &sweep::run_info())?;
            println!("wrote {out}");
            if let Some(diagnostics) = &outcome.diagnostics {
                let diag_out = sweep::diagnostics_path(out);
                manifest::write_stamped(&diag_out, diagnostics, &sweep::diagnostics_info())?;
                println!("wrote {diag_out}");
            }
            if outcome.violations.is_empty() {
                println!("resilience: PASS");
                Ok(())
            } else {
                for v in &outcome.violations {
                    eprintln!("violation: {v}");
                }
                Err(format!("resilience: FAIL ({} violations)", outcome.violations.len()))
            }
        }
        Some("churn") => {
            use optimal_routing_tables::churn;
            let (flags, positional) = parse_flags(&args[1..], &["out", "max-n"])?;
            if positional.len() > 1 {
                return Err(format!("unexpected argument '{}'", positional[1]));
            }
            let mut opts = churn::ChurnOptions::default();
            if let Some(p) = positional.first() {
                opts.out_path = p.clone();
            }
            for (flag, value) in &flags {
                match flag.as_str() {
                    "out" => opts.out_path = value.clone(),
                    "max-n" => opts.max_n = value.parse().map_err(|_| "invalid --max-n")?,
                    _ => unreachable!("parse_flags filters"),
                }
            }
            let outcome = churn::churn_sweep(&opts, |line| println!("{line}"))?;
            manifest::write_stamped(&opts.out_path, &outcome.report, &churn::run_info(&opts))?;
            println!("wrote {}", opts.out_path);
            if outcome.violations.is_empty() {
                println!("churn: PASS");
                Ok(())
            } else {
                for v in &outcome.violations {
                    eprintln!("violation: {v}");
                }
                Err(format!("churn: FAIL ({} violations)", outcome.violations.len()))
            }
        }
        Some("trace") => {
            use optimal_routing_tables::trace::{run_trace, TraceTarget};
            let name = args.get(1).ok_or("missing scheme")?.clone();
            // `--worst` is a bare flag; strip it before the `--flag value`
            // parser sees the rest.
            let worst = args[2..].iter().any(|a| a == "--worst");
            let rest: Vec<String> = args[2..].iter().filter(|a| *a != "--worst").cloned().collect();
            let (flags, positional) = parse_flags(&rest, &["n", "seed", "src", "dst"])?;
            if !positional.is_empty() {
                return Err(format!("unexpected argument '{}'", positional[0]));
            }
            let mut n = 64usize;
            let mut seed = 1u64;
            let mut src = None;
            let mut dst = None;
            for (flag, value) in &flags {
                match flag.as_str() {
                    "n" => n = value.parse().map_err(|_| "invalid --n")?,
                    "seed" => seed = value.parse().map_err(|_| "invalid --seed")?,
                    "src" => src = Some(value.parse().map_err(|_| "invalid --src")?),
                    "dst" => dst = Some(value.parse().map_err(|_| "invalid --dst")?),
                    _ => unreachable!("parse_flags filters"),
                }
            }
            let target = match (worst, src, dst) {
                (true, None, None) => TraceTarget::Worst,
                (false, Some(s), Some(t)) => TraceTarget::Pair(s, t),
                (true, _, _) => return Err("--worst excludes --src/--dst".into()),
                _ => return Err("need --src A --dst B, or --worst".into()),
            };
            print!("{}", run_trace(&name, n, seed, target)?);
            Ok(())
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

fn main() -> ExitCode {
    // A panic anywhere below dumps the flight recorder's recent events
    // to stderr (and any postmortem: sink) before the process dies.
    optimal_routing_tables::telemetry::recorder::install_panic_hook();
    let cmd = std::env::args().nth(1).unwrap_or_default();
    let code = match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One error shape for every subcommand: `ort <cmd>: error: …`
            // on stderr, non-zero exit. An empty message means usage was
            // already printed.
            if !e.is_empty() {
                eprintln!("ort {cmd}: error: {e}");
            }
            ExitCode::FAILURE
        }
    };
    // Telemetry sinks flush on every exit path, so a failing run still
    // ships its spans and counters (summary on stderr, files otherwise).
    optimal_routing_tables::telemetry::flush();
    code
}
