//! `ort` — command-line driver for the optimal-routing-tables library.
//!
//! ```text
//! ort certify <n> <seed>                  check Lemmas 1-3 + compressibility
//! ort build   <scheme> <n> <seed>         build a scheme, print size & stretch
//! ort route   <scheme> <n> <seed> <s> <t> route one message, print the path
//! ort conformance [out.json]              run the full conformance suite
//! ort schemes                             list available schemes
//! ```
//!
//! Graphs are seeded `G(n, 1/2)` samples, so every invocation is
//! reproducible.

use std::process::ExitCode;

use optimal_routing_tables::graphs::random_props::RandomnessReport;
use optimal_routing_tables::graphs::{generators, Graph};
use optimal_routing_tables::kolmogorov::deficiency::CompressorSuite;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::{
    full_information::FullInformationScheme, full_table::FullTableScheme,
    interval::IntervalScheme, landmark::LandmarkScheme, multi_interval::MultiIntervalScheme,
    theorem1::Theorem1Scheme, theorem2::Theorem2Scheme, theorem3::Theorem3Scheme,
    theorem4::Theorem4Scheme, theorem5::Theorem5Scheme,
};
use optimal_routing_tables::routing::verify;

const SCHEMES: &[&str] = &[
    "full-table",
    "theorem1",
    "theorem1-ib",
    "theorem2",
    "theorem3",
    "theorem4",
    "theorem5",
    "full-information",
    "interval",
    "multi-interval",
    "landmark",
];

fn build_scheme(name: &str, g: &Graph) -> Result<Box<dyn RoutingScheme>, String> {
    let err = |e: optimal_routing_tables::routing::scheme::SchemeError| e.to_string();
    Ok(match name {
        "full-table" => Box::new(FullTableScheme::build(g).map_err(err)?),
        "theorem1" => Box::new(Theorem1Scheme::build(g).map_err(err)?),
        "theorem1-ib" => Box::new(Theorem1Scheme::build_ib(g).map_err(err)?),
        "theorem2" => Box::new(Theorem2Scheme::build(g).map_err(err)?),
        "theorem3" => Box::new(Theorem3Scheme::build(g).map_err(err)?),
        "theorem4" => Box::new(Theorem4Scheme::build(g).map_err(err)?),
        "theorem5" => Box::new(Theorem5Scheme::build(g).map_err(err)?),
        "full-information" => Box::new(FullInformationScheme::build(g).map_err(err)?),
        "interval" => Box::new(IntervalScheme::build(g).map_err(err)?),
        "multi-interval" => Box::new(MultiIntervalScheme::build(g).map_err(err)?),
        "landmark" => Box::new(LandmarkScheme::build(g, 7).map_err(err)?),
        other => return Err(format!("unknown scheme '{other}'; try `ort schemes`")),
    })
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  ort certify <n> <seed>");
    eprintln!("  ort build   <scheme> <n> <seed>");
    eprintln!("  ort route   <scheme> <n> <seed> <src> <dst>");
    eprintln!("  ort save    <scheme> <n> <seed> <file>   (snapshot-capable schemes)");
    eprintln!("  ort load    <file> <src> <dst>");
    eprintln!("  ort conformance [out.json]               (default results/CONFORMANCE.json)");
    eprintln!("  ort schemes");
    ExitCode::FAILURE
}

fn snapshot_kind(name: &str) -> Option<optimal_routing_tables::routing::snapshot::SchemeKind> {
    use optimal_routing_tables::routing::snapshot::SchemeKind;
    Some(match name {
        "full-table" => SchemeKind::FullTable,
        "theorem1" => SchemeKind::Theorem1,
        "theorem1-ib" => SchemeKind::Theorem1Ib,
        "theorem2" => SchemeKind::Theorem2,
        "theorem5" => SchemeKind::Theorem5,
        "full-information" => SchemeKind::FullInformation,
        "multi-interval" => SchemeKind::MultiInterval,
        _ => return None,
    })
}

/// Packs a snapshot to bytes: 8-byte little-endian bit count, then the
/// bits MSB-first within each byte.
fn bits_to_bytes(bits: &optimal_routing_tables::bitio::BitVec) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + bits.len() / 8 + 1);
    out.extend_from_slice(&(bits.len() as u64).to_le_bytes());
    let mut acc = 0u8;
    let mut filled = 0u8;
    for b in bits.iter() {
        acc = (acc << 1) | u8::from(b);
        filled += 1;
        if filled == 8 {
            out.push(acc);
            acc = 0;
            filled = 0;
        }
    }
    if filled > 0 {
        out.push(acc << (8 - filled));
    }
    out
}

fn bytes_to_bits(data: &[u8]) -> Result<optimal_routing_tables::bitio::BitVec, String> {
    if data.len() < 8 {
        return Err("snapshot file too short".into());
    }
    let len = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
    if data.len() < 8 + len.div_ceil(8) {
        return Err("snapshot file truncated".into());
    }
    let mut bits = optimal_routing_tables::bitio::BitVec::with_capacity(len);
    for i in 0..len {
        let byte = data[8 + i / 8];
        bits.push((byte >> (7 - (i % 8))) & 1 == 1);
    }
    Ok(bits)
}

fn parse<T: std::str::FromStr>(s: Option<&String>, what: &str) -> Result<T, String> {
    s.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("invalid {what}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("schemes") => {
            for s in SCHEMES {
                println!("{s}");
            }
            Ok(())
        }
        Some("certify") => {
            let n: usize = parse(args.get(1), "n")?;
            let seed: u64 = parse(args.get(2), "seed")?;
            let g = generators::gnp_half(n, seed);
            let report = RandomnessReport::evaluate(&g, 3.0);
            let suite = CompressorSuite::standard();
            println!("G({n}, 1/2) seed {seed}: {} edges", g.edge_count());
            println!("lemma 1 (degree ±{:.1} vs scale {:.1}): {}",
                report.degree.max_deviation, report.degree.lemma_scale, report.degree.holds);
            println!("lemma 2 (diameter 2): {} (diameter = {:?})", report.diameter_two, report.diameter);
            println!(
                "lemma 3 (dominating prefix {:?} vs budget {:.1}): {}",
                report.cover.max_prefix, report.cover.budget, report.cover.holds
            );
            println!("deficiency estimate: {} bits", suite.graph_deficiency(&g));
            println!(
                "verdict: {}",
                if report.all_hold() { "operationally Kolmogorov random — all theorems apply" }
                else { "NOT random enough — compact schemes may refuse this graph" }
            );
            Ok(())
        }
        Some("build") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            println!("{name} on G({n}, 1/2) seed {seed} [model {}]", scheme.model());
            println!("total size: {} bits ({:.2} bits/n²)",
                scheme.total_size_bits(),
                scheme.total_size_bits() as f64 / (n * n) as f64);
            let sizes: Vec<usize> = (0..n).map(|u| scheme.charged_size_bits(u)).collect();
            println!(
                "per node: min {} / median {} / max {}",
                sizes.iter().min().unwrap(),
                {
                    let mut s = sizes.clone();
                    s.sort_unstable();
                    s[n / 2]
                },
                sizes.iter().max().unwrap()
            );
            let report = verify::verify_scheme_sampled(&g, scheme.as_ref(), if n >= 256 { 7 } else { 1 })
                .map_err(|e| e.to_string())?;
            println!(
                "verification: {} pairs, {} failures, max stretch {:?}",
                report.delivered,
                report.failures.len(),
                report.max_stretch()
            );
            Ok(())
        }
        Some("route") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let s: usize = parse(args.get(4), "src")?;
            let t: usize = parse(args.get(5), "dst")?;
            if s >= n || t >= n {
                return Err(format!("node ids must be below n = {n}"));
            }
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            let path = verify::route_pair(scheme.as_ref(), s, t, 4 * n)
                .map_err(|e| e.to_string())?;
            println!("{s} → {t} via {name}: {path:?} ({} hops)", path.len() - 1);
            Ok(())
        }
        Some("save") => {
            let name = args.get(1).ok_or("missing scheme")?.clone();
            let n: usize = parse(args.get(2), "n")?;
            let seed: u64 = parse(args.get(3), "seed")?;
            let file = args.get(4).ok_or("missing file")?;
            let kind = snapshot_kind(&name)
                .ok_or_else(|| format!("scheme '{name}' does not support snapshots"))?;
            let g = generators::gnp_half(n, seed);
            let scheme = build_scheme(&name, &g)?;
            let snap = optimal_routing_tables::routing::snapshot::save(kind, scheme.as_ref())
                .map_err(|e| e.to_string())?;
            std::fs::write(file, bits_to_bytes(&snap)).map_err(|e| e.to_string())?;
            println!("wrote {} ({} bits of snapshot, {} bits of tables)",
                file, snap.len(), scheme.total_size_bits());
            Ok(())
        }
        Some("load") => {
            let file = args.get(1).ok_or("missing file")?;
            let s: usize = parse(args.get(2), "src")?;
            let t: usize = parse(args.get(3), "dst")?;
            let data = std::fs::read(file).map_err(|e| e.to_string())?;
            let bits = bytes_to_bits(&data)?;
            let scheme = optimal_routing_tables::routing::snapshot::load(&bits)
                .map_err(|e| e.to_string())?;
            let n = scheme.node_count();
            if s >= n || t >= n {
                return Err(format!("node ids must be below n = {n}"));
            }
            let path = verify::route_pair(scheme.as_ref(), s, t, 4 * n)
                .map_err(|e| e.to_string())?;
            println!(
                "loaded scheme on {n} nodes [model {}]; {s} → {t}: {path:?}",
                scheme.model()
            );
            Ok(())
        }
        Some("conformance") => {
            use optimal_routing_tables::conformance::report;
            let out = args
                .get(1)
                .map_or("results/CONFORMANCE.json", String::as_str);
            let config = report::Config::default();
            let result = report::run(&config, |line| println!("{line}"))?;
            let json = report::to_json(&result).pretty();
            if let Some(dir) = std::path::Path::new(out).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                }
            }
            std::fs::write(out, &json).map_err(|e| e.to_string())?;
            println!("wrote {out}");
            if result.pass() {
                println!("conformance: PASS");
                Ok(())
            } else {
                for v in &result.violations {
                    eprintln!("violation: {v}");
                }
                Err(format!("conformance: FAIL ({} violations)", result.violations.len()))
            }
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            ExitCode::FAILURE
        }
    }
}
