//! The cross-run regression observatory behind `ort report`.
//!
//! Reads every stamped results file in a directory (plus the
//! `HISTORY.jsonl` trajectory next to them), re-verifies each file's
//! provenance, extracts the *named* quantities the workspace guards, and
//! writes the aggregate to `results/REPORT.json`:
//!
//! * **digest** — each file's payload is re-hashed and must match the
//!   digest its own manifest recorded at write time; a single flipped
//!   bit anywhere in a payload fails the run naming the file;
//! * **history** — the last `HISTORY.jsonl` line for each file must
//!   carry the same digest (the trajectory and the tree agree);
//! * **exact fields** — per-subcommand extractions that may never move
//!   without an intentional regeneration: conformance counts and the
//!   pass verdict, resilience delivery totals and its deterministic
//!   inline histograms, churn byte-identity counts, per-scheme bit
//!   totals from the telemetry baseline, bench table sizes;
//! * **gated ratios** — quantities that are measured, not derived
//!   (bench speedups): compared against the baseline within
//!   [`RATIO_TOLERANCE`], not bit-exactly.
//!
//! With `--baseline <REPORT.json>` the fresh extraction is compared
//! field-by-field against a previous report; any drift in an exact
//! field (or an out-of-tolerance ratio) fails the run *naming the
//! field*. CI runs exactly that against the checked-in report, so a
//! regression anywhere in `results/` is caught with a message that says
//! where.
//!
//! The report's own manifest is reduced to fully deterministic fields
//! (schema, subcommand, digest) — `REPORT.json` is byte-identical under
//! any `ORT_THREADS`, feature set, or telemetry sink configuration,
//! because everything in it comes from the checked-in file *contents*.

use crate::manifest::{self, SCHEMA_VERSION};
use ort_conformance::json::Json;

/// Relative tolerance for gated ratios (bench speedups) when comparing
/// against a baseline report. Wall-clock ratios wobble with the host;
/// a halved speedup is a finding, a 20% wobble is not.
pub const RATIO_TOLERANCE: f64 = 0.5;

/// Options for one observatory run.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Directory holding the stamped results files.
    pub dir: String,
    /// Where to write the aggregate report.
    pub out: String,
    /// Optional previous report to compare against.
    pub baseline: Option<String>,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            dir: "results".into(),
            out: "results/REPORT.json".into(),
            baseline: None,
        }
    }
}

/// The outcome: the report document, a human-readable table, and every
/// problem found (empty ⇒ pass).
#[derive(Debug)]
pub struct ReportOutcome {
    /// The aggregate report (already written to `opts.out`).
    pub report: Json,
    /// Human-readable summary table.
    pub table: String,
    /// Every failed check / regression, each naming its field.
    pub problems: Vec<String>,
}

/// Serializes one deterministic value-domain histogram for a results
/// payload: exact counts, sparse buckets — the form the observatory
/// compares byte-for-byte.
#[must_use]
pub fn hist_json(h: &ort_telemetry::HistData) -> Json {
    Json::obj(vec![
        ("count", Json::Int(h.count as i64)),
        ("sum", Json::Int(h.sum as i64)),
        ("max", Json::Int(h.max as i64)),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(i, c)| Json::Arr(vec![Json::Int(i as i64), Json::Int(c as i64)]))
                    .collect(),
            ),
        ),
    ])
}

/// Splits a stamped document into its manifest and the original payload
/// text the digest was computed over. Returns `None` when the document
/// carries no manifest.
///
/// The manifest is always the first key and always flat, so its block
/// is exactly the lines from `"manifest": {` through the first `},` at
/// depth 1 — removing them textually reconstructs the pre-stamp payload
/// byte-for-byte (which a JSON round-trip would not, for the bench
/// files' single-line records).
#[must_use]
pub fn unstamp(text: &str) -> Option<(Json, String)> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.first() != Some(&"{") || lines.get(1) != Some(&"  \"manifest\": {") {
        return None;
    }
    let close = lines.iter().position(|l| *l == "  },")?;
    let manifest_text = lines[1..=close]
        .join("\n")
        .trim_start()
        .strip_prefix("\"manifest\":")?
        .trim()
        .trim_end_matches(',')
        .to_string();
    let m = Json::parse(&manifest_text).ok()?;
    let mut payload = String::from("{\n");
    payload.push_str(&lines[close + 1..].join("\n"));
    payload.push('\n');
    Some((m, payload))
}

fn i64_at(doc: &Json, path: &[&str]) -> Option<i64> {
    let mut v = doc;
    for k in path {
        v = v.get(k)?;
    }
    v.as_i64()
}

fn arr_len(doc: &Json, key: &str) -> i64 {
    doc.get(key).and_then(Json::as_arr).map_or(0, |a| a.len() as i64)
}

fn pass_of(doc: &Json) -> Json {
    match doc.get("pass") {
        Some(Json::Bool(b)) => Json::Bool(*b),
        _ => Json::Null,
    }
}

/// The inline `hists` section (if any) as per-name compact strings —
/// strict string equality is exactly "the deterministic histograms must
/// match", and a failure names the histogram.
fn hist_fields(doc: &Json) -> Vec<(String, Json)> {
    let Some(Json::Obj(hists)) = doc.get("hists") else {
        return Vec::new();
    };
    hists.iter().map(|(name, h)| (name.clone(), Json::Str(h.compact()))).collect()
}

/// Sums an integer field over the `results` array of a bench file.
fn sum_over(doc: &Json, arr: &str, field: &str) -> i64 {
    doc.get(arr)
        .and_then(Json::as_arr)
        .map_or(0, |a| a.iter().filter_map(|r| r.get(field).and_then(Json::as_i64)).sum())
}

/// The per-subcommand exact extraction — every value here must be
/// byte-stable across regenerations.
fn exact_fields(subcommand: &str, doc: &Json) -> Json {
    let mut out: Vec<(String, Json)> = Vec::new();
    let mut push = |k: &str, v: Json| out.push((k.to_string(), v));
    match subcommand {
        "conformance" => {
            push("pass", pass_of(doc));
            push("violations", Json::Int(arr_len(doc, "violations")));
            push("schemes_covered", Json::Int(arr_len(doc, "schemes_covered")));
            push("exhaustive_graphs", Json::Int(arr_len(doc, "differential_exhaustive")));
            push("sweeps", Json::Int(arr_len(doc, "differential_sweeps")));
            push(
                "fuzz_mutations",
                Json::Int(i64_at(doc, &["fuzz", "total_mutations"]).unwrap_or(-1)),
            );
            push("fuzz_panics", Json::Int(i64_at(doc, &["fuzz", "panics"]).unwrap_or(-1)));
        }
        "resilience" => {
            push("pass", pass_of(doc));
            push("violations", Json::Int(arr_len(doc, "violations")));
            push("cells", Json::Int(arr_len(doc, "cells")));
            push("refusals", Json::Int(arr_len(doc, "refusals")));
            let cells = doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
            let total = |f: &str| -> i64 {
                cells.iter().filter_map(|c| c.get(f).and_then(Json::as_i64)).sum()
            };
            push("pairs_total", Json::Int(total("pairs")));
            push("delivered_total", Json::Int(total("delivered")));
            for (name, h) in hist_fields(doc) {
                push(&format!("hist.{name}"), h);
            }
        }
        "resilience-diagnostics" => {
            push("violations", Json::Int(arr_len(doc, "violations")));
            push("exemplars", Json::Int(arr_len(doc, "avoidable_exemplars")));
        }
        "churn" => {
            push("pass", pass_of(doc));
            push("violations", Json::Int(arr_len(doc, "violations")));
            push("cells", Json::Int(arr_len(doc, "cells")));
            for cell in doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
                let name = cell.get("name").and_then(Json::as_str).unwrap_or("?");
                let summary = Json::obj(vec![
                    (
                        "events_applied",
                        Json::Int(i64_at(cell, &["events_applied"]).unwrap_or(-1)),
                    ),
                    (
                        "byte_identical_steps",
                        Json::Int(i64_at(cell, &["checks", "byte_identical_steps"]).unwrap_or(-1)),
                    ),
                    (
                        "verify_equal_steps",
                        Json::Int(i64_at(cell, &["checks", "verify_equal_steps"]).unwrap_or(-1)),
                    ),
                ]);
                push(&format!("cell.{name}"), Json::Str(summary.compact()));
            }
            for (name, h) in hist_fields(doc) {
                push(&format!("hist.{name}"), h);
            }
        }
        "bench-gate" => {
            push("entries", Json::Int(arr_len(doc, "entries")));
            for e in doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]) {
                let scheme = e.get("scheme").and_then(Json::as_str).unwrap_or("?");
                let n = i64_at(e, &["n"]).unwrap_or(-1);
                push(
                    &format!("bits_total.{scheme}@{n}"),
                    Json::Int(i64_at(e, &["bits", "total"]).unwrap_or(-1)),
                );
            }
        }
        "bench" => {
            push("results", Json::Int(arr_len(doc, "results")));
            push("peak_bytes_total", Json::Int(sum_over(doc, "results", "peak_bytes")));
        }
        "bench-build" => {
            push("results", Json::Int(arr_len(doc, "results")));
            push("table_bytes_total", Json::Int(sum_over(doc, "results", "table_bytes")));
        }
        _ => {}
    }
    Json::Obj(out)
}

/// The measured (non-exact) ratios the observatory gates with a
/// tolerance instead of equality: any top-level numeric `speedup_*`.
fn ratio_fields(doc: &Json) -> Json {
    let Json::Obj(pairs) = doc else { return Json::Obj(Vec::new()) };
    Json::Obj(
        pairs
            .iter()
            .filter(|(k, v)| k.starts_with("speedup_") && v.as_f64().is_some())
            .cloned()
            .collect(),
    )
}

fn read_history(dir: &std::path::Path) -> (Vec<Json>, Vec<String>) {
    let mut lines = Vec::new();
    let mut problems = Vec::new();
    let path = dir.join("HISTORY.jsonl");
    match std::fs::read_to_string(&path) {
        Err(_) => problems.push(format!("{}: missing (no run trajectory)", path.display())),
        Ok(text) => {
            for (i, line) in text.lines().enumerate() {
                match Json::parse(line) {
                    Ok(v) => lines.push(v),
                    Err(e) => problems.push(format!(
                        "{}:{}: unparseable history line: {e}",
                        path.display(),
                        i + 1
                    )),
                }
            }
        }
    }
    (lines, problems)
}

/// One results file's entry in the report.
fn file_entry(
    name: &str,
    text: &str,
    history: &[Json],
    problems: &mut Vec<String>,
) -> Json {
    let Some((m, payload)) = unstamp(text) else {
        problems.push(format!("{name}: no manifest (unstamped results file)"));
        return Json::obj(vec![("file", Json::Str(name.into())), ("manifest", Json::Bool(false))]);
    };
    let subcommand = m.get("subcommand").and_then(Json::as_str).unwrap_or("?").to_string();
    let schema = m.get("schema").and_then(Json::as_i64).unwrap_or(-1);
    if schema != SCHEMA_VERSION {
        problems.push(format!("{name}: manifest schema {schema}, expected {SCHEMA_VERSION}"));
    }
    let stored = m.get("digest").and_then(Json::as_str).unwrap_or("").to_string();
    let recomputed = manifest::digest_of(&payload);
    let digest_ok = stored == recomputed;
    if !digest_ok {
        problems.push(format!(
            "{name}: digest: payload hashes to {recomputed}, manifest says {stored} — \
             the file was modified after it was written"
        ));
    }
    // The trajectory must agree with the tree: the newest history line
    // for this file carries the digest the file itself claims.
    let last = history
        .iter()
        .rev()
        .find(|h| h.get("file").and_then(Json::as_str) == Some(name));
    let history_ok = match last {
        None => {
            problems.push(format!("{name}: history: no HISTORY.jsonl line for this file"));
            false
        }
        Some(h) => {
            let hd = h.get("digest").and_then(Json::as_str).unwrap_or("");
            if hd == stored {
                true
            } else {
                problems.push(format!(
                    "{name}: history: last trajectory digest {hd} != manifest digest {stored}"
                ));
                false
            }
        }
    };
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            problems.push(format!("{name}: unparseable: {e}"));
            Json::Null
        }
    };
    Json::obj(vec![
        ("file", Json::Str(name.into())),
        ("subcommand", Json::Str(subcommand.clone())),
        ("schema", Json::Int(schema)),
        ("digest", Json::Str(stored)),
        ("digest_ok", Json::Bool(digest_ok)),
        ("history_ok", Json::Bool(history_ok)),
        ("exact", exact_fields(&subcommand, &doc)),
        ("ratios", ratio_fields(&doc)),
    ])
}

/// Compares the fresh `files` section against a baseline report.
/// Exact fields (and digests) must match bit-for-bit; ratios must agree
/// within [`RATIO_TOLERANCE`]. Every drift is reported by field name.
fn compare_to_baseline(fresh: &Json, baseline: &Json, problems: &mut Vec<String>) {
    let empty: &[Json] = &[];
    let fresh_files = fresh.get("files").and_then(Json::as_arr).unwrap_or(empty);
    let base_files = baseline.get("files").and_then(Json::as_arr).unwrap_or(empty);
    let by_name = |name: &str, set: &[Json]| -> Option<Json> {
        set.iter().find(|f| f.get("file").and_then(Json::as_str) == Some(name)).cloned()
    };
    for bf in base_files {
        let name = bf.get("file").and_then(Json::as_str).unwrap_or("?").to_string();
        let Some(ff) = by_name(&name, fresh_files) else {
            problems.push(format!("{name}: tracked by the baseline report but missing now"));
            continue;
        };
        // Digest: the catch-all. Any payload drift lands here even if no
        // named extraction covers it.
        let bd = bf.get("digest").and_then(Json::as_str).unwrap_or("");
        let fd = ff.get("digest").and_then(Json::as_str).unwrap_or("");
        if bd != fd {
            problems.push(format!("{name}: digest: baseline {bd}, fresh {fd}"));
        }
        // Exact fields: bit-for-bit.
        let base_exact = bf.get("exact").cloned().unwrap_or(Json::Obj(Vec::new()));
        let fresh_exact = ff.get("exact").cloned().unwrap_or(Json::Obj(Vec::new()));
        if let (Json::Obj(bp), Json::Obj(fp)) = (&base_exact, &fresh_exact) {
            for (k, bv) in bp {
                match fp.iter().find(|(fk, _)| fk == k) {
                    None => problems.push(format!("{name}: exact.{k}: missing from fresh report")),
                    Some((_, fv)) if fv.compact() != bv.compact() => problems.push(format!(
                        "{name}: exact.{k}: baseline {}, fresh {}",
                        bv.compact(),
                        fv.compact()
                    )),
                    Some(_) => {}
                }
            }
        }
        // Ratios: within tolerance.
        if let (Some(Json::Obj(bp)), Some(Json::Obj(fp))) = (bf.get("ratios"), ff.get("ratios")) {
            for (k, bv) in bp {
                let Some(b) = bv.as_f64() else { continue };
                match fp.iter().find(|(fk, _)| fk == k).and_then(|(_, v)| v.as_f64()) {
                    None => problems.push(format!("{name}: ratios.{k}: missing from fresh report")),
                    Some(f) => {
                        let rel = (f - b).abs() / b.abs().max(f64::EPSILON);
                        if rel > RATIO_TOLERANCE {
                            problems.push(format!(
                                "{name}: ratios.{k}: baseline {b:?}, fresh {f:?} \
                                 (drift {:.0}% > {:.0}%)",
                                rel * 100.0,
                                RATIO_TOLERANCE * 100.0
                            ));
                        }
                    }
                }
            }
        }
    }
}

fn human_table(files: &[Json], history_lines: usize, problems: &[String]) -> String {
    let mut t = String::new();
    t.push_str(&format!(
        "{:<34}{:<14}{:>7}  {:>6}  {:>7}  exact fields\n",
        "file", "subcommand", "schema", "digest", "history"
    ));
    for f in files {
        let get = |k: &str| f.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
        let ok = |k: &str| match f.get(k) {
            Some(Json::Bool(true)) => "ok",
            Some(Json::Bool(false)) => "FAIL",
            _ => "-",
        };
        let exact_n = match f.get("exact") {
            Some(Json::Obj(p)) => p.len(),
            _ => 0,
        };
        t.push_str(&format!(
            "{:<34}{:<14}{:>7}  {:>6}  {:>7}  {exact_n}\n",
            get("file"),
            get("subcommand"),
            f.get("schema").and_then(Json::as_i64).unwrap_or(-1),
            ok("digest_ok"),
            ok("history_ok"),
        ));
    }
    t.push_str(&format!(
        "{} files, {history_lines} history lines, {} problem(s)\n",
        files.len(),
        problems.len()
    ));
    for p in problems {
        t.push_str(&format!("  REGRESSION {p}\n"));
    }
    t
}

/// Runs the observatory: scan, verify, extract, compare, write.
///
/// # Errors
///
/// I/O failures reading the results directory or writing the report.
/// Check failures and regressions are returned in
/// [`ReportOutcome::problems`], not as `Err` — the caller decides the
/// exit code.
pub fn run(opts: &ReportOptions) -> Result<ReportOutcome, String> {
    let _span = ort_telemetry::span("report.run");
    let dir = std::path::Path::new(&opts.dir);
    let mut problems = Vec::new();
    let (history, mut history_problems) = read_history(dir);
    problems.append(&mut history_problems);
    // Every .json in the directory except the report itself (and any
    // baseline the caller pointed at inside the same directory).
    let skip = ["REPORT.json"];
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json") && !skip.contains(&n.as_str()))
        .collect();
    names.sort();
    let mut files = Vec::new();
    for name in &names {
        let text = std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: {e}"))?;
        files.push(file_entry(name, &text, &history, &mut problems));
    }
    let partial = Json::obj(vec![
        ("suite", Json::Str("ort report".into())),
        ("files", Json::Arr(files.clone())),
        ("history_lines", Json::Int(history.len() as i64)),
    ]);
    if let Some(base_path) = &opts.baseline {
        let base_text = std::fs::read_to_string(base_path)
            .map_err(|e| format!("baseline {base_path}: {e}"))?;
        let base = Json::parse(&base_text).map_err(|e| format!("baseline {base_path}: {e}"))?;
        compare_to_baseline(&partial, &base, &mut problems);
    }
    let Json::Obj(mut payload_fields) = partial else { unreachable!() };
    payload_fields.push((
        "problems".to_string(),
        Json::Arr(problems.iter().map(|p| Json::Str(p.clone())).collect()),
    ));
    payload_fields.push(("pass".to_string(), Json::Bool(problems.is_empty())));
    let payload = Json::Obj(payload_fields);
    // The report's own manifest carries only fully deterministic fields —
    // REPORT.json must be byte-identical under any environment. The
    // digest covers the complete payload (verdict included), so the
    // schema test can re-verify REPORT.json like any other results file.
    let report = Json::Obj(
        std::iter::once((
            "manifest".to_string(),
            Json::obj(vec![
                ("schema", Json::Int(SCHEMA_VERSION)),
                ("subcommand", Json::Str("report".into())),
                ("digest", Json::Str(manifest::digest_of(&payload.pretty()))),
            ]),
        ))
        .chain(match payload {
            Json::Obj(pairs) => pairs.into_iter(),
            _ => unreachable!(),
        })
        .collect(),
    );
    std::fs::write(&opts.out, report.pretty()).map_err(|e| format!("{}: {e}", opts.out))?;
    let table = human_table(&files, history.len(), &problems);
    Ok(ReportOutcome { report, table, problems })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunInfo;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ort-report-{name}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_sample(dir: &std::path::Path) {
        let payload = Json::obj(vec![
            ("suite", Json::Str("ort conformance".into())),
            ("schemes_covered", Json::Arr(vec![Json::Str("full-table".into())])),
            ("violations", Json::Arr(vec![])),
            ("pass", Json::Bool(true)),
        ]);
        manifest::write_stamped(
            dir.join("CONFORMANCE.json").to_str().unwrap(),
            &payload,
            &RunInfo::new("conformance", "exhaustive_n=6", "1,2,3"),
        )
        .unwrap();
    }

    fn opts(dir: &std::path::Path) -> ReportOptions {
        ReportOptions {
            dir: dir.to_str().unwrap().into(),
            out: dir.join("REPORT.json").to_str().unwrap().into(),
            baseline: None,
        }
    }

    #[test]
    fn unstamp_recovers_the_payload_exactly() {
        let payload = Json::obj(vec![("pass", Json::Bool(true))]);
        let stamped = manifest::stamp(&payload, &RunInfo::new("x", "", "1")).pretty();
        let (m, body) = unstamp(&stamped).expect("stamped");
        assert_eq!(body, payload.pretty());
        assert_eq!(
            m.get("digest").and_then(Json::as_str),
            Some(manifest::digest_of(&payload.pretty()).as_str())
        );
    }

    #[test]
    fn clean_directory_passes() {
        let dir = tmp("clean");
        write_sample(&dir);
        let out = run(&opts(&dir)).unwrap();
        assert!(out.problems.is_empty(), "{:?}", out.problems);
        assert!(dir.join("REPORT.json").exists());
        // The emitted report parses and carries the reduced manifest.
        let rep = Json::parse(&std::fs::read_to_string(dir.join("REPORT.json")).unwrap()).unwrap();
        assert_eq!(
            rep.get("manifest").unwrap().get("subcommand").and_then(Json::as_str),
            Some("report")
        );
        assert!(rep.get("manifest").unwrap().get("threads").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn payload_perturbation_fails_naming_the_file() {
        let dir = tmp("perturb");
        write_sample(&dir);
        let path = dir.join("CONFORMANCE.json");
        // Flip one payload bit: true → false.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"pass\": true", "\"pass\": false")).unwrap();
        let out = run(&opts(&dir)).unwrap();
        assert!(
            out.problems.iter().any(|p| p.contains("CONFORMANCE.json") && p.contains("digest")),
            "{:?}",
            out.problems
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_drift_names_the_exact_field() {
        let dir = tmp("baseline");
        write_sample(&dir);
        let o = opts(&dir);
        run(&o).unwrap(); // writes the baseline REPORT.json
        // Regenerate the results file with a different exact value, as a
        // legitimate (re-stamped) write — digests are self-consistent, so
        // only the baseline comparison can catch it.
        let payload = Json::obj(vec![
            ("suite", Json::Str("ort conformance".into())),
            ("schemes_covered", Json::Arr(vec![Json::Str("full-table".into())])),
            ("violations", Json::Arr(vec![Json::Str("boom".into())])),
            ("pass", Json::Bool(false)),
        ]);
        manifest::write_stamped(
            dir.join("CONFORMANCE.json").to_str().unwrap(),
            &payload,
            &RunInfo::new("conformance", "exhaustive_n=6", "1,2,3"),
        )
        .unwrap();
        let with_base = ReportOptions {
            out: dir.join("REPORT_fresh.json").to_str().unwrap().into(),
            baseline: Some(dir.join("REPORT.json").to_str().unwrap().into()),
            ..o
        };
        let out = run(&with_base).unwrap();
        assert!(
            out.problems.iter().any(|p| p.contains("exact.violations")),
            "{:?}",
            out.problems
        );
        assert!(
            out.problems.iter().any(|p| p.contains("exact.pass")),
            "{:?}",
            out.problems
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unstamped_file_is_a_problem() {
        let dir = tmp("unstamped");
        std::fs::write(dir.join("LOOSE.json"), "{\n  \"x\": 1\n}\n").unwrap();
        std::fs::write(dir.join("HISTORY.jsonl"), "").unwrap();
        let out = run(&opts(&dir)).unwrap();
        assert!(
            out.problems.iter().any(|p| p.contains("LOOSE.json") && p.contains("no manifest")),
            "{:?}",
            out.problems
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
