//! The capture-and-explain run behind `ort trace`.
//!
//! One invocation builds a scheme on a seeded `G(n, 1/2)` graph, routes a
//! single pair under an installed
//! [`TraceRecorder`](ort_telemetry::trace::TraceRecorder), replays the
//! captured walk through [`ort_routing::explain`], and renders the trace
//! tree with per-hop stretch attribution. The whole run — construction,
//! worst-pair selection and explanation — shares **one** APSP computation
//! (`build_with_oracle` + `verify_scheme_with_oracle`).
//!
//! The renderer *refuses* a non-reconciling attribution: if
//! `Σ excess != hops + dist_at_end − dist(src, dst)` the run errors out
//! instead of printing numbers that do not add up.

use std::fmt::Write as _;
use std::sync::Arc;

use ort_conformance::registry::SchemeId;
use ort_graphs::generators;
use ort_graphs::paths::Apsp;
use ort_routing::explain::{self, AttemptExplanation, Explanation};
use ort_routing::verify;
use ort_telemetry::trace::{self as trace_api, TraceRecorder};

/// Which pair `ort trace` should capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTarget {
    /// An explicit `(src, dst)` pair.
    Pair(usize, usize),
    /// The maximum-stretch delivered pair, read off the verifier's report
    /// (no rescan — the verification already knows it).
    Worst,
}

/// Runs one trace capture and returns the rendered report.
///
/// # Errors
///
/// Returns a message for unknown schemes, out-of-range nodes, refused
/// constructions, failed captures, and attributions that do not
/// reconcile.
pub fn run_trace(
    name: &str,
    n: usize,
    seed: u64,
    target: TraceTarget,
) -> Result<String, String> {
    if !ort_telemetry::enabled() {
        return Err(
            "tracing is compiled out (built without the `telemetry` feature)".to_string()
        );
    }
    let id = SchemeId::from_name(name)
        .ok_or_else(|| format!("unknown scheme '{name}'; try `ort schemes`"))?;
    let g = generators::gnp_half(n, seed);
    // The single APSP of the run: construction, worst-pair verification
    // and the explainer all read from this oracle.
    let oracle = Apsp::compute(&g).into_oracle();
    let scheme = id.build_with_oracle(&g, &oracle).map_err(|e| e.to_string())?;

    let mut header = format!("trace {name} on G({n}, 1/2) seed {seed}\n");
    let (src, dst) = match target {
        TraceTarget::Pair(s, t) => {
            if s >= n || t >= n {
                return Err(format!("node ids must be below n = {n}"));
            }
            if s == t {
                return Err("src and dst must differ".to_string());
            }
            (s, t)
        }
        TraceTarget::Worst => {
            let report = verify::verify_scheme_with_oracle(&g, scheme.as_ref(), &oracle)
                .map_err(|e| e.to_string())?;
            let (s, t, hops, dist) = report
                .worst
                .ok_or("no delivered pair at distance >= 1 to pick a worst pair from")?;
            let _ = writeln!(
                header,
                "worst pair by stretch: {s} -> {t} ({hops} hops over distance {dist}, \
                 stretch {:.3})",
                f64::from(hops) / f64::from(dist)
            );
            (s, t)
        }
    };

    let recorder = TraceRecorder::for_pair(src, dst);
    let walk = {
        let _guard = trace_api::install(Arc::clone(&recorder));
        verify::route_pair(scheme.as_ref(), src, dst, verify::default_hop_limit(n))
    };
    let messages = recorder.messages();
    let trace = messages.first().ok_or("no trace captured (recorder saw no events)")?;
    let explanation = explain::explain(&oracle, trace)?;
    if !explanation.reconciles() {
        return Err(format!(
            "attribution does not reconcile for {src} -> {dst}: refusing to render \
             (explainer and walk disagree; this is a bug)"
        ));
    }
    if let Err(failure) = walk {
        let _ = writeln!(header, "walk failed: {failure}");
    }
    Ok(format!("{header}{}", render(&explanation)))
}

/// Renders an explained trace as the `ort trace` tree: one line per hop
/// with its distance movement and excess charge, a divergence marker, and
/// a reconciliation footer per attempt.
#[must_use]
pub fn render(ex: &Explanation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} -> {}  distance {}  {}",
        ex.src,
        ex.dst,
        ex.distance,
        if ex.delivered { "delivered" } else { "NOT delivered" }
    );
    for attempt in &ex.attempts {
        render_attempt(&mut out, ex, attempt);
    }
    out
}

fn render_attempt(out: &mut String, ex: &Explanation, a: &AttemptExplanation) {
    let _ = writeln!(out, "+- attempt {} ({})", a.attempt, a.outcome);
    for (i, h) in a.per_hop.iter().enumerate() {
        let marker = match (a.divergence == Some(i), h.rank) {
            (true, _) => "  <- diverges from shortest path",
            (false, r) if r > 0 => "  (failover)",
            _ => "",
        };
        let _ = writeln!(
            out,
            "|  #{:<3} {:>4} --p{}--> {:<4} dist {} -> {}  excess +{}{marker}",
            h.seq, h.from, h.rank, h.to, h.dist_before, h.dist_after, h.excess
        );
    }
    if let Some(b) = &a.blocked {
        let _ = writeln!(out, "|  blocked at {} -> {}: {} (t={})", b.node, b.to, b.fault, b.time);
    }
    let reconciled = if a.reconciles(ex.distance) { "reconciles" } else { "DOES NOT RECONCILE" };
    let _ = writeln!(
        out,
        "+- attribution: {} hops = distance {} + excess {} ({reconciled})",
        a.hops, ex.distance, a.total_excess
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_pair_renders_a_reconciling_tree() {
        if !ort_telemetry::enabled() {
            assert!(run_trace("full-table", 16, 1, TraceTarget::Pair(0, 5))
                .unwrap_err()
                .contains("compiled out"));
            return;
        }
        let out = run_trace("full-table", 16, 1, TraceTarget::Pair(0, 5)).unwrap();
        assert!(out.contains("trace full-table"), "{out}");
        assert!(out.contains("delivered"), "{out}");
        assert!(out.contains("(reconciles)"), "{out}");
        assert!(!out.contains("DOES NOT RECONCILE"), "{out}");
    }

    #[test]
    fn worst_pair_comes_from_the_report() {
        if !ort_telemetry::enabled() {
            return;
        }
        let out = run_trace("theorem4", 32, 2, TraceTarget::Worst).unwrap();
        assert!(out.contains("worst pair by stretch"), "{out}");
        assert!(out.contains("(reconciles)"), "{out}");
    }

    #[test]
    fn bad_inputs_are_rejected() {
        if !ort_telemetry::enabled() {
            return;
        }
        assert!(run_trace("no-such", 16, 1, TraceTarget::Worst).is_err());
        assert!(run_trace("full-table", 16, 1, TraceTarget::Pair(0, 16)).is_err());
        assert!(run_trace("full-table", 16, 1, TraceTarget::Pair(3, 3)).is_err());
    }
}
