//! The fault-intensity sweep behind `ort resilience`, plus its
//! trace-backed diagnostics.
//!
//! The sweep itself (every registry scheme, bare and wrapped in the
//! resilient detour adapter, against shared seeded link-fault loads on
//! three topologies) produces `results/RESILIENCE.json` exactly as
//! before. On top of it, when tracing is compiled in, every cell that
//! recorded *avoidable* losses gets an exemplar diagnosis: the first
//! avoidable-failed pair is re-routed in a fresh [`Network`] under a
//! filtered [`TraceRecorder`], the captured walk is replayed through
//! [`ort_routing::explain`], and the veto is matched back to the exact
//! [`FaultPlan`] event that fired. The result — one entry per
//! avoidable-loss bucket, plus exemplar references attached to every
//! acceptance violation — is returned separately so the main report
//! stays byte-identical whether or not tracing is enabled.
//!
//! Re-running a pair out of band is sound here because sweep plans are
//! static (every event fires at `t = 0` — exactly what
//! [`FaultPlan::random_link_faults`] produces), so a fresh network
//! reproduces the in-sweep walk bit for bit.

use std::sync::Arc;

use ort_conformance::json::Json;
use ort_conformance::registry::SchemeId;
use ort_graphs::paths::{Apsp, DistanceOracle};
use ort_graphs::ports::PortAssignment;
use ort_graphs::{generators, Graph, NodeId};
use ort_routing::scheme::RoutingScheme;
use ort_routing::schemes::resilient::ResilientScheme;
use ort_simnet::faults::FaultPlan;
use ort_simnet::resilience::{
    acceptance_violations, resilience_hop_limit, run_cell_detailed, ResilienceConfig, SweepCell,
};
use ort_simnet::{FailureBreakdown, Network};
use ort_telemetry::trace::{self as trace_api, TraceRecorder};

/// Seed for the sweep's fault loads (kept stable so result files are
/// reproducible).
pub const FAULT_SEED: u64 = 13;
/// The swept fault intensities (fraction of links cut).
pub const INTENSITIES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];
/// Cap on rendered trace lines per diagnostics exemplar (the structured
/// fields are never truncated; `trace_truncated` flags a capped render).
const TRACE_LINE_CAP: usize = 48;

/// Everything `ort resilience` needs to write and judge a run.
pub struct SweepOutcome {
    /// The `results/RESILIENCE.json` report (unchanged by tracing).
    pub report: Json,
    /// Acceptance violations (empty ⇒ exit 0).
    pub violations: Vec<String>,
    /// The trace-backed diagnostics report, or `None` when tracing is
    /// compiled out (`--no-default-features`).
    pub diagnostics: Option<Json>,
}

fn breakdown(b: &FailureBreakdown) -> Json {
    Json::Obj(b.entries().iter().map(|&(k, v)| (k.to_string(), Json::Int(v as i64))).collect())
}

fn opt_num(x: Option<f64>) -> Json {
    x.map_or(Json::Null, Json::Num)
}

/// The matching key of a diagnosed exemplar, for attaching exemplar
/// indices to the acceptance violations that name the same cell.
struct Exemplar {
    topology: String,
    scheme: String,
}

/// The sweep: every registry scheme, bare and wrapped, against the same
/// seeded link-fault loads of increasing intensity on three topologies.
///
/// # Errors
///
/// Returns a message when a cell's fault plan is rejected or an exemplar
/// diagnosis is internally inconsistent (both indicate a bug, not bad
/// input).
pub fn resilience_sweep(
    verbose: bool,
    mut progress: impl FnMut(&str),
) -> Result<SweepOutcome, String> {
    let cfg = ResilienceConfig::default();
    let topologies: Vec<(&str, Graph)> = vec![
        ("gnp32", generators::gnp_half(32, 3)),
        ("grid6x6", generators::grid(6, 6)),
        ("path24", generators::path(24)),
    ];
    let mut cells: Vec<SweepCell> = Vec::new();
    let mut refusals: Vec<Json> = Vec::new();
    let mut loads: Vec<Json> = Vec::new();
    let mut exemplar_entries: Vec<Json> = Vec::new();
    let mut exemplar_keys: Vec<Exemplar> = Vec::new();
    for (tname, g) in &topologies {
        let oracle = Apsp::compute(g).into_oracle();
        let pa = PortAssignment::sorted(g);
        // One shared plan per (topology, intensity): every scheme faces the
        // same broken links, so cells are comparable.
        let plans: Vec<FaultPlan> = INTENSITIES
            .iter()
            .enumerate()
            .map(|(i, &x)| FaultPlan::random_link_faults(&pa, x, FAULT_SEED + i as u64))
            .collect();
        for (i, &intensity) in INTENSITIES.iter().enumerate() {
            loads.push(Json::obj(vec![
                ("topology", Json::Str((*tname).into())),
                ("intensity", Json::Num(intensity)),
                ("seed", Json::Int((FAULT_SEED + i as u64) as i64)),
                ("links_down", Json::Int(plans[i].len() as i64)),
            ]));
            if verbose {
                println!("{tname} fault plan at intensity {intensity}:");
                print!("{}", plans[i]);
            }
        }
        for id in SchemeId::ALL {
            let bare = match id.build(g) {
                Ok(s) => s,
                Err(e) => {
                    progress(&format!("{tname}/{}: refused ({e})", id.name()));
                    refusals.push(Json::obj(vec![
                        ("topology", Json::Str((*tname).into())),
                        ("scheme", Json::Str(id.name().into())),
                        ("reason", Json::Str(e.to_string())),
                    ]));
                    continue;
                }
            };
            let wrapped = ResilientScheme::wrap(id.build(g).expect("built once already"));
            progress(&format!("{tname}/{}: sweeping {} intensities", id.name(), INTENSITIES.len()));
            for (i, &intensity) in INTENSITIES.iter().enumerate() {
                for (is_wrapped, scheme) in
                    [(false, bare.as_ref()), (true, &wrapped as &dyn RoutingScheme)]
                {
                    let (metrics, hop_stats, round_report) =
                        run_cell_detailed(scheme, &oracle, &plans[i], &cfg)
                            .map_err(|e| e.to_string())?;
                    if verbose {
                        println!(
                            "{tname}/{}{} at intensity {intensity}:",
                            id.name(),
                            if is_wrapped { " (wrapped)" } else { "" }
                        );
                        println!("  hop-level face:");
                        println!("{hop_stats}");
                        println!("  round face:");
                        println!("{round_report}");
                    }
                    if ort_telemetry::enabled() {
                        if let Some((s, t)) = metrics.first_avoidable {
                            exemplar_entries.push(diagnose_exemplar(
                                scheme, &oracle, &plans[i], tname, id.name(), is_wrapped,
                                intensity, s, t,
                            )?);
                            exemplar_keys.push(Exemplar {
                                topology: (*tname).into(),
                                scheme: id.name().into(),
                            });
                        }
                    }
                    cells.push(SweepCell {
                        topology: (*tname).into(),
                        n: g.node_count(),
                        intensity,
                        scheme: id.name().into(),
                        multipath: id == SchemeId::FullInformation,
                        wrapped: is_wrapped,
                        metrics,
                    });
                }
            }
        }
    }
    let violations = acceptance_violations(&cells);

    // Cross-cell value-domain distributions, built with plain local
    // histograms so the report is byte-identical with telemetry compiled
    // out. Cells are visited in their (deterministic) construction order.
    let mut delivery_h = ort_telemetry::LocalHist::new();
    let mut stretch_h = ort_telemetry::LocalHist::new();
    let mut retries_h = ort_telemetry::LocalHist::new();
    for c in &cells {
        delivery_h.record((c.metrics.delivery_ratio() * 1000.0).round() as u64);
        if let Some(s) = c.metrics.mean_stretch {
            stretch_h.record((s * 1000.0).round() as u64);
        }
        retries_h.record(c.metrics.retries);
    }
    let hists = [
        delivery_h.data("delivery_x1000"),
        retries_h.data("retries"),
        stretch_h.data("stretch_x1000"),
    ];
    if verbose {
        println!("cross-cell distributions:");
        for h in &hists {
            println!("  {:<18}{}", h.name, h.percentile_line());
        }
    }

    let cell_json: Vec<Json> = cells
        .iter()
        .map(|c| {
            // Stretch inflation is relative to the same scheme's fault-free
            // run on the same topology.
            let baseline = cells
                .iter()
                .find(|b| {
                    b.topology == c.topology
                        && b.scheme == c.scheme
                        && b.wrapped == c.wrapped
                        && b.intensity == 0.0
                })
                .and_then(|b| b.metrics.mean_stretch);
            let inflation = match (c.metrics.mean_stretch, baseline) {
                (Some(s), Some(b)) if b > 0.0 => Some(s / b),
                _ => None,
            };
            Json::obj(vec![
                ("topology", Json::Str(c.topology.clone())),
                ("n", Json::Int(c.n as i64)),
                ("intensity", Json::Num(c.intensity)),
                ("scheme", Json::Str(c.scheme.clone())),
                ("wrapped", Json::Bool(c.wrapped)),
                ("multipath", Json::Bool(c.multipath)),
                ("pairs", Json::Int(c.metrics.pairs as i64)),
                ("delivered", Json::Int(c.metrics.delivered as i64)),
                ("delivery_ratio", Json::Num(c.metrics.delivery_ratio())),
                ("reachable_delivery_ratio", Json::Num(c.metrics.reachable_delivery_ratio())),
                ("partition_detected", Json::Int(c.metrics.unreachable_failed as i64)),
                ("avoidable_failed", Json::Int(c.metrics.avoidable_failed as i64)),
                ("failures", breakdown(&c.metrics.failures)),
                ("reroutes", Json::Int(c.metrics.reroutes as i64)),
                ("mean_stretch", opt_num(c.metrics.mean_stretch)),
                ("stretch_inflation", opt_num(inflation)),
                ("rounds_to_drain", Json::Int(i64::from(c.metrics.rounds_to_drain))),
                ("round_delivered", Json::Int(c.metrics.round_delivered as i64)),
                ("round_failures", breakdown(&c.metrics.round_failures)),
                ("round_stranded", Json::Int(c.metrics.round_stranded as i64)),
                ("retries", Json::Int(c.metrics.retries as i64)),
                ("round_reroutes", Json::Int(c.metrics.round_reroutes as i64)),
                ("mean_latency", opt_num(c.metrics.mean_latency)),
                ("max_queue", Json::Int(c.metrics.max_queue as i64)),
            ])
        })
        .collect();

    let report = Json::obj(vec![
        ("suite", Json::Str("resilience".into())),
        (
            "config",
            Json::obj(vec![
                ("intensities", Json::Arr(INTENSITIES.iter().map(|&x| Json::Num(x)).collect())),
                ("fault_seed", Json::Int(FAULT_SEED as i64)),
                ("capacity", Json::Int(cfg.capacity as i64)),
                ("ttl", cfg.ttl.map_or(Json::Null, |t| Json::Int(i64::from(t)))),
                (
                    "retry",
                    Json::obj(vec![
                        ("max_retries", Json::Int(i64::from(cfg.retry.max_retries))),
                        ("backoff_base", Json::Int(i64::from(cfg.retry.backoff_base))),
                        ("backoff_cap", Json::Int(i64::from(cfg.retry.backoff_cap))),
                    ]),
                ),
                ("hop_limit_n32", Json::Int(resilience_hop_limit(32) as i64)),
            ]),
        ),
        (
            "topologies",
            Json::Arr(
                topologies
                    .iter()
                    .map(|(name, g)| {
                        Json::obj(vec![
                            ("name", Json::Str((*name).into())),
                            ("n", Json::Int(g.node_count() as i64)),
                            ("edges", Json::Int(g.edge_count() as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fault_loads", Json::Arr(loads)),
        ("refusals", Json::Arr(refusals)),
        ("cells", Json::Arr(cell_json)),
        (
            "hists",
            Json::Obj(
                hists
                    .iter()
                    .map(|h| (h.name.clone(), crate::report::hist_json(h)))
                    .collect(),
            ),
        ),
        ("violations", Json::Arr(violations.iter().map(|v| Json::Str(v.clone())).collect())),
        ("pass", Json::Bool(violations.is_empty())),
    ]);

    let diagnostics = ort_telemetry::enabled().then(|| {
        // Attach exemplar references to every acceptance violation: an
        // exemplar is relevant when the violation names its topology and
        // scheme.
        let violation_json: Vec<Json> = violations
            .iter()
            .map(|v| {
                let refs: Vec<Json> = exemplar_keys
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| v.contains(&e.topology) && v.contains(&e.scheme))
                    .map(|(i, _)| Json::Int(i as i64))
                    .collect();
                Json::obj(vec![
                    ("violation", Json::Str(v.clone())),
                    ("exemplars", Json::Arr(refs)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("suite", Json::Str("resilience-diagnostics".into())),
            (
                "note",
                Json::Str(
                    "one traced exemplar per avoidable-loss bucket; exemplar indices \
                     attached to each acceptance violation"
                        .into(),
                ),
            ),
            ("avoidable_exemplars", Json::Arr(exemplar_entries)),
            ("violations", Json::Arr(violation_json)),
        ])
    });

    Ok(SweepOutcome { report, violations, diagnostics })
}

/// Re-routes one avoidable-failed pair under a filtered recorder and
/// explains the captured walk: stretch attribution per attempt, plus the
/// exact fault-plan event that vetoed the blocked hop.
#[allow(clippy::too_many_arguments)]
fn diagnose_exemplar(
    scheme: &dyn RoutingScheme,
    oracle: &DistanceOracle,
    plan: &FaultPlan,
    topology: &str,
    scheme_name: &str,
    wrapped: bool,
    intensity: f64,
    src: NodeId,
    dst: NodeId,
) -> Result<Json, String> {
    let n = scheme.node_count();
    let recorder = TraceRecorder::for_pair(src, dst);
    {
        let _guard = trace_api::install(Arc::clone(&recorder));
        let mut net = Network::new(scheme);
        net.set_hop_limit(resilience_hop_limit(n));
        net.set_fault_plan(plan.clone()).map_err(|e| e.to_string())?;
        let _ = net.send(src, dst);
    }
    let messages = recorder.messages();
    let trace = messages
        .first()
        .ok_or_else(|| format!("exemplar re-run of {src} -> {dst} captured no trace"))?;
    let ex = ort_routing::explain::explain(oracle, trace)?;
    if !ex.reconciles() {
        return Err(format!(
            "exemplar attribution for {topology}/{scheme_name} {src} -> {dst} does not \
             reconcile (explainer and walk disagree; this is a bug)"
        ));
    }
    // Name the exact scheduled fault behind the first veto, if the walk
    // was stopped by the fault layer at all.
    let fault_event = ex
        .attempts
        .iter()
        .find_map(|a| a.blocked.as_ref())
        .and_then(|b| plan.blocking_event(b.time, b.node, b.to, b.fault))
        .map(|tf| format!("t={} {}", tf.at, tf.event));
    let attempts: Vec<Json> = ex
        .attempts
        .iter()
        .map(|a| {
            Json::obj(vec![
                ("attempt", Json::Int(i64::from(a.attempt))),
                ("hops", Json::Int(i64::from(a.hops))),
                ("excess", Json::Int(a.total_excess as i64)),
                (
                    "divergence",
                    a.divergence.map_or(Json::Null, |i| Json::Int(i as i64)),
                ),
                ("outcome", Json::Str(a.outcome.clone())),
            ])
        })
        .collect();
    let full = crate::trace::render(&ex);
    let mut lines: Vec<Json> =
        full.lines().take(TRACE_LINE_CAP).map(|l| Json::Str(l.to_string())).collect();
    let truncated = full.lines().count() > TRACE_LINE_CAP;
    if truncated {
        lines.push(Json::Str(format!(
            "... ({} more lines)",
            full.lines().count() - TRACE_LINE_CAP
        )));
    }
    Ok(Json::obj(vec![
        ("topology", Json::Str(topology.into())),
        ("scheme", Json::Str(scheme_name.into())),
        ("wrapped", Json::Bool(wrapped)),
        ("intensity", Json::Num(intensity)),
        ("src", Json::Int(src as i64)),
        ("dst", Json::Int(dst as i64)),
        ("distance", Json::Int(i64::from(ex.distance))),
        ("delivered", Json::Bool(ex.delivered)),
        ("fault_event", fault_event.map_or(Json::Null, Json::Str)),
        ("attempts", Json::Arr(attempts)),
        ("trace", Json::Arr(lines)),
        ("trace_truncated", Json::Bool(truncated)),
    ]))
}

/// The diagnostics output path for a given report path:
/// `results/RESILIENCE.json` → `results/RESILIENCE_DIAGNOSTICS.json`.
#[must_use]
pub fn diagnostics_path(out: &str) -> String {
    format!("{}_DIAGNOSTICS.json", out.strip_suffix(".json").unwrap_or(out))
}

fn fault_seeds() -> String {
    (0..INTENSITIES.len() as u64)
        .map(|i| (FAULT_SEED + i).to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Provenance for the sweep's results file.
#[must_use]
pub fn run_info() -> crate::manifest::RunInfo {
    crate::manifest::RunInfo::new(
        "resilience",
        "topologies=gnp32,grid6x6,path24 intensities=0,0.05,0.15,0.3",
        fault_seeds(),
    )
}

/// Provenance for the diagnostics file.
#[must_use]
pub fn diagnostics_info() -> crate::manifest::RunInfo {
    crate::manifest::RunInfo::new(
        "resilience-diagnostics",
        "topologies=gnp32,grid6x6,path24 intensities=0,0.05,0.15,0.3",
        fault_seeds(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_path_is_adjacent() {
        assert_eq!(
            diagnostics_path("results/RESILIENCE.json"),
            "results/RESILIENCE_DIAGNOSTICS.json"
        );
        assert_eq!(diagnostics_path("out"), "out_DIAGNOSTICS.json");
    }
}
