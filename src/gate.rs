//! `ort bench-gate` — the perf-regression and bit-drift gate.
//!
//! The gate re-measures every registry scheme on the baseline's seeded
//! `G(n, 1/2)` graphs and compares against two checked-in documents:
//!
//! * `results/TELEMETRY_BASELINE.json` — per-`(scheme, n)` bit
//!   breakdowns ([`BitBreakdown`]: routing / port-permutation / label
//!   bits) and median build wall-clock. **Bit comparisons are exact** —
//!   table sizes are deterministic functions of the graph, so any drift
//!   is an encoder change, never noise. Timing comparisons are
//!   *normalized*: each scheme's fresh/baseline ratio is compared to the
//!   run-wide median ratio, so a uniformly slower or faster machine
//!   cancels out and only a *relative* regression beyond the baseline's
//!   `tolerance` (default 25%) fails the gate. Sub-millisecond baselines
//!   are skipped as noise.
//! * `results/BENCH_apsp.json` — the APSP engine snapshot. The gate
//!   re-times the default engine against the queue-serial baseline on
//!   the same graph and fails if the normalized default-engine time
//!   (default ms / queue ms, machine speed cancels) regressed by more
//!   than the tolerance. The large-`n` sparse regime gets the same
//!   treatment at `n = 4096` (tiled vs queue), plus two static checks on
//!   the snapshot itself: tiled must beat bitset, and the compact store's
//!   peak bytes must stay at least 2x below the `u32` full matrix.
//!
//! `record` writes a fresh baseline; `check` compares and reports.

use std::time::Instant;

use ort_conformance::json::Json;
use ort_conformance::registry::SchemeId;
use ort_graphs::generators;
use ort_graphs::paths::{Apsp, ApspEngine};
use ort_routing::accounting::BitBreakdown;

/// Default baseline path, checked in next to the other result documents.
pub const DEFAULT_BASELINE: &str = "results/TELEMETRY_BASELINE.json";
/// Default APSP snapshot path (written by `ort-bench`'s `apsp_snapshot`).
pub const DEFAULT_BENCH: &str = "results/BENCH_apsp.json";
/// Default scheme-construction snapshot path (written by `ort bench-build`).
pub const DEFAULT_BUILD_BENCH: &str = "results/BENCH_build.json";
/// Default churn report path (written by `ort churn`).
pub const DEFAULT_CHURN: &str = "results/CHURN.json";

/// Minimum speedup of a patched single-link repair over a cold
/// full-table rebuild at [`CHURN_GATE_N`] nodes. Below this the
/// incremental path has lost its reason to exist.
pub const REPAIR_SPEEDUP_FLOOR: f64 = 5.0;
/// Graph size for the fresh repair-vs-rebuild measurement.
pub const CHURN_GATE_N: usize = 4096;

/// Graph size for the fresh banded-oracle memory probe (`--mem`).
pub const MEM_BANDED_N: usize = 4096;
/// Graph size for the fresh compact-width APSP memory probe (`--mem`).
pub const MEM_APSP_N: usize = 1024;
/// Multiplicative headroom a measured region peak may sit above its
/// analytic claim before the memory gate calls it unaccounted
/// allocation. The claims are guaranteed lower bounds, so anything the
/// model omits (allocator rounding, per-tile transients) must fit here.
pub const MEM_SLACK: f64 = 1.25;
/// Absolute headroom added on top of [`MEM_SLACK`]: size-independent
/// transients such as hist registration and span bookkeeping.
pub const MEM_ABS_SLACK: u64 = 256 * 1024;

/// Measurement plan: sizes, graph seed, timing repetitions, and the
/// relative timing tolerance stored into (and read back from) the
/// baseline document.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Graph sizes to measure (`G(n, 1/2)` each).
    pub sizes: Vec<usize>,
    /// Generator seed shared by all sizes.
    pub seed: u64,
    /// Build repetitions per scheme; the median is recorded.
    pub reps: usize,
    /// Allowed relative timing regression (0.25 = 25%).
    pub tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { sizes: vec![64, 128, 256], seed: 1, reps: 5, tolerance: 0.25 }
    }
}

/// One `(scheme, n)` measurement: the exact bit decomposition and the
/// median build time.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Registry name of the scheme.
    pub scheme: &'static str,
    /// Graph size.
    pub n: usize,
    /// Routing-function bits (excluding the port permutation).
    pub routing_bits: usize,
    /// Port-permutation (Lehmer) bits.
    pub port_permutation_bits: usize,
    /// Charged label bits (model γ only).
    pub label_bits: usize,
    /// Total charged bits — always the sum of the three shares.
    pub total_bits: usize,
    /// Largest per-node total.
    pub max_node_bits: usize,
    /// Median wall-clock of `reps` builds, in milliseconds.
    pub build_ms_median: f64,
    /// Fastest of the `reps` builds, in milliseconds. Not stored in the
    /// baseline document; the comparison uses the fresh *floor* against
    /// the baseline *median*, so a transient busy phase during the fresh
    /// run cannot fail the gate, while a real slowdown (which moves the
    /// floor too) still does.
    pub build_ms_min: f64,
}

/// The gate's verdict: informational lines plus hard failures.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Progress/summary lines (always printed).
    pub lines: Vec<String>,
    /// Failures; empty means the gate passes.
    pub failures: Vec<String>,
}

impl GateReport {
    /// Whether the gate passed.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Builds and times every registry scheme per the config.
///
/// # Errors
///
/// Returns a message if any scheme refuses one of the baseline graphs —
/// the gate's graphs are chosen so every scheme accepts them, so a
/// refusal is itself a regression.
pub fn measure(cfg: &GateConfig) -> Result<Vec<Measurement>, String> {
    let _span = ort_telemetry::span("gate.measure");
    let mut out = Vec::new();
    for &n in &cfg.sizes {
        let g = generators::gnp_half(n, cfg.seed);
        for id in SchemeId::ALL {
            let mut times = Vec::with_capacity(cfg.reps);
            let mut built = None;
            for _ in 0..cfg.reps.max(1) {
                let t = Instant::now();
                let scheme = id.build(&g).map_err(|e| {
                    format!("{} refused G({n}, 1/2) seed {}: {e}", id.name(), cfg.seed)
                })?;
                times.push(t.elapsed().as_secs_f64() * 1e3);
                built = Some(scheme);
            }
            let floor = times.iter().copied().fold(f64::INFINITY, f64::min);
            let scheme = built.expect("reps >= 1");
            let b = BitBreakdown::of(scheme.as_ref());
            out.push(Measurement {
                scheme: id.name(),
                n,
                routing_bits: b.routing_bits(),
                port_permutation_bits: b.port_permutation_bits(),
                label_bits: b.label_bits(),
                total_bits: b.total(),
                max_node_bits: b.max_node_bits(),
                build_ms_median: median(times),
                build_ms_min: floor,
            });
        }
    }
    Ok(out)
}

/// The `--mem` probes: deterministic single-threaded measurements from
/// the instrumented allocator, comparable across hosts because the
/// accounting is in requested bytes and the allocation pattern of a
/// serial run is a pure function of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemProbes {
    /// Analytic [`BandedOracle::peak_bytes`] claim at [`MEM_BANDED_N`].
    pub banded_claimed: u64,
    /// Measured region peak of one full banded sweep at [`MEM_BANDED_N`].
    pub banded_measured: u64,
    /// Measured region peak of one serial compact-width APSP at
    /// [`MEM_APSP_N`].
    pub apsp_measured: u64,
    /// The historical `u32` full-matrix footprint at [`MEM_APSP_N`] the
    /// compact store is held against.
    pub apsp_u32_full: u64,
}

/// Runs the fresh memory probes, or `None` when the instrumented
/// allocator is compiled out (`--no-default-features`).
#[must_use]
pub fn measure_mem() -> Option<MemProbes> {
    use ort_graphs::oracle::{BandedOracle, Distances};
    if !ort_telemetry::alloc::installed() {
        return None;
    }
    let _span = ort_telemetry::span("gate.mem");

    // Probe 1: the streaming oracle's one-band contract, measured. The
    // oracle (and its graph clone) is built outside the region so the
    // region peak is exactly what `peak_bytes` models: one band of
    // compact cells plus the tiled engine's scratch.
    let g = generators::power_law_seeded(
        MEM_BANDED_N,
        crate::bench::SPARSE_M,
        crate::bench::SPARSE_GAMMA,
        crate::bench::BENCH_SEED,
    );
    let band_rows = ApspEngine::tile_sources(MEM_BANDED_N);
    let banded = BandedOracle::with_engine(g.clone(), band_rows, ApspEngine::Tiled);
    let banded_claimed = banded.peak_bytes() as u64;
    let region = ort_telemetry::alloc::mem_span("gate.mem.banded");
    let mut u = 0;
    while u < MEM_BANDED_N {
        std::hint::black_box(banded.distance(u, 0));
        u += band_rows;
    }
    let banded_measured = region.finish().region_peak_bytes;
    drop(banded);
    drop(g);

    // Probe 2: the compact-width APSP store, measured against the
    // historical u32 full matrix — the u8-vs-u32 width win must survive
    // in allocator-observed bytes, not only in the analytic model.
    let g = generators::power_law_seeded(
        MEM_APSP_N,
        crate::bench::SPARSE_M,
        crate::bench::SPARSE_GAMMA,
        crate::bench::BENCH_SEED,
    );
    let region = ort_telemetry::alloc::mem_span("gate.mem.apsp");
    let apsp = Apsp::compute_serial_with_engine(&g, ApspEngine::Tiled);
    let apsp_measured = region.finish().region_peak_bytes;
    drop(apsp);

    Some(MemProbes {
        banded_claimed,
        banded_measured,
        apsp_measured,
        apsp_u32_full: (MEM_APSP_N * MEM_APSP_N * 4) as u64,
    })
}

/// The memory gate (`ort bench-gate --mem`): three checks against the
/// fresh [`measure_mem`] probes.
///
/// 1. **One-band contract, measured.** The banded oracle's analytic
///    `peak_bytes` must be a true lower bound on the measured sweep peak
///    (`claimed ≤ measured`), and the measured peak must not exceed the
///    claim beyond [`MEM_SLACK`]`×` plus [`MEM_ABS_SLACK`] — either
///    direction failing means the analytic model and the allocator
///    disagree about what streaming costs.
/// 2. **Width ratio.** The measured compact-width APSP peak must stay at
///    least 2× below the historical `u32` full matrix.
/// 3. **No regression.** Both measured peaks are compared against the
///    `mem` section recorded in the baseline document; growth beyond the
///    baseline tolerance fails the gate.
///
/// Overshoot freezes the flight recorder
/// ([`ort_telemetry::recorder::anomaly`]) so the postmortem JSONL sink,
/// when attached, captures the run that broke the contract.
fn check_mem(doc: &Json, tolerance: f64, report: &mut GateReport) {
    let Some(p) = measure_mem() else {
        report
            .lines
            .push("mem: allocator instrumentation compiled out; memory gate skipped".into());
        return;
    };

    let cap = (p.banded_claimed as f64 * MEM_SLACK) as u64 + MEM_ABS_SLACK;
    report.lines.push(format!(
        "mem: banded n={MEM_BANDED_N} claimed {} B, measured {} B ({:.2}x, cap {} B)",
        p.banded_claimed,
        p.banded_measured,
        p.banded_measured as f64 / p.banded_claimed.max(1) as f64,
        cap
    ));
    if p.banded_measured < p.banded_claimed {
        report.failures.push(format!(
            "mem: banded n={MEM_BANDED_N} measured peak {} B under the analytic claim {} B — \
             peak_bytes overstates what the sweep allocates",
            p.banded_measured, p.banded_claimed
        ));
    } else if p.banded_measured > cap {
        ort_telemetry::recorder::anomaly("mem_gate_overshoot", p.banded_measured, cap);
        report.failures.push(format!(
            "mem: banded n={MEM_BANDED_N} measured peak {} B exceeds the analytic claim {} B \
             beyond slack (cap {} B) — the one-band streaming contract broke in measured bytes",
            p.banded_measured, p.banded_claimed, cap
        ));
    }

    if p.apsp_measured * 2 > p.apsp_u32_full {
        ort_telemetry::recorder::anomaly("mem_gate_overshoot", p.apsp_measured, p.apsp_u32_full / 2);
        report.failures.push(format!(
            "mem: apsp n={MEM_APSP_N} measured peak {} B not 2x below the u32 full matrix \
             ({} B) — the compact-width memory win no longer shows up in measured bytes",
            p.apsp_measured, p.apsp_u32_full
        ));
    } else {
        report.lines.push(format!(
            "mem: apsp n={MEM_APSP_N} measured peak {} B holds {:.1}x below the u32 matrix",
            p.apsp_measured,
            p.apsp_u32_full as f64 / p.apsp_measured.max(1) as f64
        ));
    }

    let Some(mem) = doc.get("mem") else {
        report.failures.push(
            "mem: baseline has no 'mem' section — re-record with an instrumented build \
             (`ort bench-gate --record`)"
                .into(),
        );
        return;
    };
    for (key, fresh) in [("banded", p.banded_measured), ("apsp", p.apsp_measured)] {
        let base = mem
            .get(key)
            .and_then(|s| s.get("measured_peak_bytes"))
            .and_then(Json::as_i64)
            .and_then(|i| u64::try_from(i).ok());
        let Some(base) = base else {
            report.failures.push(format!(
                "mem: baseline 'mem.{key}' is missing 'measured_peak_bytes' — re-record"
            ));
            continue;
        };
        let allowed = (base as f64 * (1.0 + tolerance)) as u64;
        if fresh > allowed {
            ort_telemetry::recorder::anomaly("mem_gate_overshoot", fresh, allowed);
            report.failures.push(format!(
                "mem: {key} measured peak regressed {:.0}% over the recorded baseline \
                 ({base} B -> {fresh} B, tolerance {:.0}%)",
                (fresh as f64 / base as f64 - 1.0) * 100.0,
                tolerance * 100.0
            ));
        } else {
            report.lines.push(format!(
                "mem: {key} measured peak {fresh} B within baseline {base} B (+{:.0}% allowed)",
                tolerance * 100.0
            ));
        }
    }
}

/// Renders measurements as the baseline document. The `mem` section is
/// present only when the recording build carried the instrumented
/// allocator; its measured values sit on their own pretty-printed lines
/// so `manifest::mask_volatile` strips them from byte-identity diffs.
#[must_use]
pub fn to_json(cfg: &GateConfig, measurements: &[Measurement], mem: Option<&MemProbes>) -> Json {
    let mut fields = vec![
        ("suite", Json::Str("telemetry-baseline".into())),
        ("graph", Json::Str("gnp_half(n, seed)".into())),
        ("unit", Json::Str("bits exact; ms median wall clock".into())),
        ("seed", Json::Int(cfg.seed as i64)),
        ("reps", Json::Int(cfg.reps as i64)),
        ("tolerance", Json::Num(cfg.tolerance)),
        ("sizes", Json::Arr(cfg.sizes.iter().map(|&n| Json::Int(n as i64)).collect())),
        (
            "entries",
            Json::Arr(
                measurements
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("scheme", Json::Str(m.scheme.into())),
                            ("n", Json::Int(m.n as i64)),
                            (
                                "bits",
                                Json::obj(vec![
                                    ("routing", Json::Int(m.routing_bits as i64)),
                                    (
                                        "port_permutation",
                                        Json::Int(m.port_permutation_bits as i64),
                                    ),
                                    ("label", Json::Int(m.label_bits as i64)),
                                    ("total", Json::Int(m.total_bits as i64)),
                                    ("max_node", Json::Int(m.max_node_bits as i64)),
                                ]),
                            ),
                            ("build_ms_median", Json::Num(m.build_ms_median)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(p) = mem {
        fields.push((
            "mem",
            Json::obj(vec![
                (
                    "banded",
                    Json::obj(vec![
                        ("n", Json::Int(MEM_BANDED_N as i64)),
                        ("claimed_peak_bytes", Json::Int(p.banded_claimed as i64)),
                        ("measured_peak_bytes", Json::Int(p.banded_measured as i64)),
                    ]),
                ),
                (
                    "apsp",
                    Json::obj(vec![
                        ("n", Json::Int(MEM_APSP_N as i64)),
                        ("u32_full_bytes", Json::Int(p.apsp_u32_full as i64)),
                        ("measured_peak_bytes", Json::Int(p.apsp_measured as i64)),
                    ]),
                ),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Measures per the config and writes the baseline to `path`.
///
/// # Errors
///
/// Returns a message if measurement or the write fails.
pub fn record(cfg: &GateConfig, path: &str) -> Result<(), String> {
    let measurements = measure(cfg)?;
    let mem = measure_mem();
    let payload = to_json(cfg, &measurements, mem.as_ref());
    let sizes = cfg.sizes.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
    crate::manifest::write_stamped(
        path,
        &payload,
        &crate::manifest::RunInfo::new(
            "bench-gate",
            format!("record sizes={sizes} reps={} tolerance={}", cfg.reps, cfg.tolerance),
            cfg.seed.to_string(),
        ),
    )
}

fn field_usize(v: &Json, key: &str, ctx: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Json::as_i64)
        .and_then(|i| usize::try_from(i).ok())
        .ok_or_else(|| format!("baseline: {ctx}: missing or invalid '{key}'"))
}

/// Parses a baseline document back into its config and measurements.
///
/// # Errors
///
/// Returns a message naming the first malformed field.
pub fn parse_baseline(doc: &Json) -> Result<(GateConfig, Vec<Measurement>), String> {
    let seed = doc
        .get("seed")
        .and_then(Json::as_i64)
        .ok_or("baseline: missing 'seed'")? as u64;
    let reps = field_usize(doc, "reps", "header")?;
    let tolerance =
        doc.get("tolerance").and_then(Json::as_f64).ok_or("baseline: missing 'tolerance'")?;
    let sizes = doc
        .get("sizes")
        .and_then(Json::as_arr)
        .ok_or("baseline: missing 'sizes'")?
        .iter()
        .map(|v| v.as_i64().and_then(|i| usize::try_from(i).ok()))
        .collect::<Option<Vec<usize>>>()
        .ok_or("baseline: invalid 'sizes'")?;
    let entries = doc.get("entries").and_then(Json::as_arr).ok_or("baseline: missing 'entries'")?;
    let mut measurements = Vec::with_capacity(entries.len());
    for e in entries {
        let name = e.get("scheme").and_then(Json::as_str).ok_or("baseline: entry missing 'scheme'")?;
        let id = SchemeId::from_name(name)
            .ok_or_else(|| format!("baseline: unknown scheme '{name}'"))?;
        let n = field_usize(e, "n", name)?;
        let bits = e.get("bits").ok_or_else(|| format!("baseline: {name}: missing 'bits'"))?;
        measurements.push(Measurement {
            scheme: id.name(),
            n,
            routing_bits: field_usize(bits, "routing", name)?,
            port_permutation_bits: field_usize(bits, "port_permutation", name)?,
            label_bits: field_usize(bits, "label", name)?,
            total_bits: field_usize(bits, "total", name)?,
            max_node_bits: field_usize(bits, "max_node", name)?,
            build_ms_median: e
                .get("build_ms_median")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline: {name}: missing 'build_ms_median'"))?,
            build_ms_min: f64::NAN,
        });
    }
    Ok((GateConfig { sizes, seed, reps, tolerance }, measurements))
}

/// Compares a fresh measurement against a parsed baseline. Pure — no I/O,
/// no clocks beyond what `fresh` already contains — so tests can feed it
/// synthetic values.
#[must_use]
pub fn compare(
    baseline: &[Measurement],
    fresh: &[Measurement],
    tolerance: f64,
) -> GateReport {
    let mut report = GateReport::default();
    let mut ratios = Vec::new();
    for base in baseline {
        let Some(now) = fresh.iter().find(|m| m.scheme == base.scheme && m.n == base.n) else {
            report
                .failures
                .push(format!("{} n={}: present in baseline, not measured", base.scheme, base.n));
            continue;
        };
        for (what, b, f) in [
            ("routing bits", base.routing_bits, now.routing_bits),
            ("port-permutation bits", base.port_permutation_bits, now.port_permutation_bits),
            ("label bits", base.label_bits, now.label_bits),
            ("total bits", base.total_bits, now.total_bits),
            ("max node bits", base.max_node_bits, now.max_node_bits),
        ] {
            if b != f {
                report.failures.push(format!(
                    "{} n={}: {what} drifted: baseline {b}, fresh {f}",
                    base.scheme, base.n
                ));
            }
        }
        if base.build_ms_median >= 1.0 {
            ratios.push((base, now, now.build_ms_min / base.build_ms_median));
        }
    }
    for now in fresh {
        if !baseline.iter().any(|m| m.scheme == now.scheme && m.n == now.n) {
            report.failures.push(format!(
                "{} n={}: measured but absent from baseline — re-record it",
                now.scheme, now.n
            ));
        }
    }

    // Normalize machine speed out: a uniformly slower host moves every
    // ratio together, so only ratios above the run-wide median by more
    // than the tolerance indicate a per-scheme regression.
    if ratios.is_empty() {
        report.lines.push("timing: no baseline entry reaches 1 ms; timing gate skipped".into());
    } else {
        let med = median(ratios.iter().map(|&(_, _, r)| r).collect());
        report.lines.push(format!(
            "timing: {} comparable entries, run-wide median ratio {med:.2}",
            ratios.len()
        ));
        for (base, now, r) in &ratios {
            if *r > med * (1.0 + tolerance) {
                report.failures.push(format!(
                    "{} n={}: build regressed {:.0}% beyond the run median \
                     (baseline median {:.3} ms, fresh floor {:.3} ms, tolerance {:.0}%)",
                    base.scheme,
                    base.n,
                    (r / med - 1.0) * 100.0,
                    base.build_ms_median,
                    now.build_ms_min,
                    tolerance * 100.0
                ));
            }
        }
    }
    report
}

/// Best-of-`reps` wall-clock milliseconds (after one warmup call).
fn best_ms<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Checks the fresh bitset-vs-queue serial APSP ratio against the
/// checked-in snapshot at `n = 256`. Both engines run single-threaded,
/// so both host speed *and* host core count cancel in the quotient —
/// only a change to the engines themselves can move it.
fn check_apsp_snapshot(doc: &Json, tolerance: f64, report: &mut GateReport) {
    // n = 512 keeps both measurements in the milliseconds, where a
    // best-of-7 minimum is stable; at 256 the bitset engine is so fast
    // (~0.3 ms) that scheduler jitter alone can breach the tolerance.
    const N: usize = 512;
    let ms_of = |engine: &str| -> Option<f64> {
        doc.get("results")?.as_arr()?.iter().find_map(|r| {
            (r.get("engine")?.as_str()? == engine
                && usize::try_from(r.get("n")?.as_i64()?) == Ok(N))
            .then(|| r.get("ms").and_then(Json::as_f64))
            .flatten()
        })
    };
    let (Some(base_queue), Some(base_bitset)) = (ms_of("queue_serial"), ms_of("bitset_serial"))
    else {
        report
            .failures
            .push(format!("apsp snapshot: no n={N} queue_serial/bitset_serial entries"));
        return;
    };
    let _span = ort_telemetry::span("gate.apsp");
    let g = generators::gnp_half(N, 1);
    // Interleave the engines so each pair shares one load phase of the
    // host, then take the *minimum ratio* across pairs: common-mode noise
    // (a busy neighbour slowing both engines) cancels inside a pair, and
    // the min picks the calmest pair. Measuring each engine in its own
    // window instead lets a noise phase inflate only one side.
    let mut fresh_norm = f64::INFINITY;
    let mut fresh_queue = f64::INFINITY;
    let mut fresh_bitset = f64::INFINITY;
    drop(std::hint::black_box(Apsp::compute_serial_with_engine(&g, ApspEngine::Queue)));
    for _ in 0..5 {
        let q = best_ms(
            || drop(std::hint::black_box(Apsp::compute_serial_with_engine(&g, ApspEngine::Queue))),
            1,
        );
        let b = best_ms(
            || drop(std::hint::black_box(Apsp::compute_serial_with_engine(&g, ApspEngine::Bitset))),
            10,
        );
        fresh_queue = fresh_queue.min(q);
        fresh_bitset = fresh_bitset.min(b);
        fresh_norm = fresh_norm.min(b / q);
    }
    let base_norm = base_bitset / base_queue;
    report.lines.push(format!(
        "apsp n={N}: bitset/queue serial ratio baseline {base_norm:.4}, fresh {fresh_norm:.4} \
         (best queue {fresh_queue:.3} ms, best bitset {fresh_bitset:.3} ms)"
    ));
    if fresh_norm > base_norm * (1.0 + tolerance) {
        report.failures.push(format!(
            "apsp n={N}: bitset engine regressed {:.0}% vs queue baseline (tolerance {:.0}%)",
            (fresh_norm / base_norm - 1.0) * 100.0,
            tolerance * 100.0
        ));
    }
}

/// Checks the large-`n` sparse regime against the snapshot at `n = 4096`.
///
/// Static (snapshot-only) checks first: the tiled engine must beat the
/// bitset engine on the checked-in numbers, and the compact distance
/// store must hold the memory contract (peak oracle bytes at least 2x
/// below the historical `u32` full matrix). Then one fresh measurement:
/// the tiled/queue serial ratio on the same sparse power-law graph,
/// compared to the snapshot's ratio — both engines single-threaded, so
/// host speed cancels in the quotient.
fn check_apsp_scale(doc: &Json, tolerance: f64, report: &mut GateReport) {
    const N: usize = 4096;
    let results = doc.get("results").and_then(Json::as_arr);
    let rec = |engine: &str| -> Option<&Json> {
        results?.iter().find(|r| {
            r.get("engine").and_then(Json::as_str) == Some(engine)
                && r.get("n").and_then(Json::as_i64) == Some(N as i64)
        })
    };
    let (Some(queue), Some(bitset), Some(tiled)) =
        (rec("queue_serial"), rec("bitset_serial"), rec("tiled_serial"))
    else {
        report.failures.push(format!(
            "apsp scale: no n={N} sparse queue/bitset/tiled entries in the snapshot — \
             regenerate with `ort bench`"
        ));
        return;
    };
    let ms = |r: &Json| r.get("ms").and_then(Json::as_f64);
    let (Some(base_queue), Some(base_bitset), Some(base_tiled)) =
        (ms(queue), ms(bitset), ms(tiled))
    else {
        report.failures.push(format!("apsp scale: an n={N} sparse entry is missing 'ms'"));
        return;
    };
    if base_tiled >= base_bitset {
        report.failures.push(format!(
            "apsp scale: snapshot shows tiled ({base_tiled:.1} ms) not beating bitset \
             ({base_bitset:.1} ms) at n={N} sparse — the tiled engine lost its regime"
        ));
    }
    if let Some(peak) = tiled.get("peak_bytes").and_then(Json::as_i64) {
        let u32_full = (N * N * 4) as i64;
        if peak * 2 > u32_full {
            report.failures.push(format!(
                "apsp scale: tiled peak {peak} B exceeds half the u32 full matrix \
                 ({u32_full} B) at n={N} — the compact-store memory contract broke"
            ));
        } else {
            report.lines.push(format!(
                "apsp scale: compact store holds {:.1}x below the u32 matrix at n={N}",
                u32_full as f64 / peak as f64
            ));
        }
    } else {
        report.failures.push(format!("apsp scale: tiled n={N}: missing 'peak_bytes'"));
    }

    let _span = ort_telemetry::span("gate.apsp_scale");
    let g = generators::power_law_seeded(
        N,
        crate::bench::SPARSE_M,
        crate::bench::SPARSE_GAMMA,
        crate::bench::BENCH_SEED,
    );
    // Same interleave-and-take-the-min-ratio discipline as the dense
    // check: each pair shares one load phase, the min picks the calmest.
    let mut fresh_norm = f64::INFINITY;
    let mut fresh_queue = f64::INFINITY;
    let mut fresh_tiled = f64::INFINITY;
    drop(std::hint::black_box(Apsp::compute_serial_with_engine(&g, ApspEngine::Tiled)));
    for _ in 0..3 {
        let q = best_ms(
            || drop(std::hint::black_box(Apsp::compute_serial_with_engine(&g, ApspEngine::Queue))),
            1,
        );
        let t = best_ms(
            || drop(std::hint::black_box(Apsp::compute_serial_with_engine(&g, ApspEngine::Tiled))),
            1,
        );
        fresh_queue = fresh_queue.min(q);
        fresh_tiled = fresh_tiled.min(t);
        fresh_norm = fresh_norm.min(t / q);
    }
    let base_norm = base_tiled / base_queue;
    report.lines.push(format!(
        "apsp n={N} sparse: tiled/queue serial ratio baseline {base_norm:.4}, fresh \
         {fresh_norm:.4} (best queue {fresh_queue:.3} ms, best tiled {fresh_tiled:.3} ms)"
    ));
    if fresh_norm > base_norm * (1.0 + tolerance) {
        report.failures.push(format!(
            "apsp n={N} sparse: tiled engine regressed {:.0}% vs queue baseline (tolerance {:.0}%)",
            (fresh_norm / base_norm - 1.0) * 100.0,
            tolerance * 100.0
        ));
    }
}

/// Checks the scheme-construction snapshot (`results/BENCH_build.json`).
///
/// Static (snapshot-only) checks first:
///
/// * Every banded record must hold the streaming memory contract — peak
///   distance bytes of at most one band (`band_rows · n` cells of at
///   most 4 bytes), never the full matrix.
/// * Banded builds must not thrash the band cache: at most two
///   ascending passes (landmark's pass structure) plus the connectivity
///   row, i.e. `bands_computed ≤ 2·⌈n/band_rows⌉ + 2`.
/// * The acceptance sizes must be present: theorem1, full-table,
///   interval and landmark all banded-built at `n = 16384`.
///
/// Then one fresh measurement: the banded/full build-time ratio for the
/// full table at `n = 1024` on the sparse power-law graph, compared to
/// the snapshot's ratio — both single-host runs, so machine speed
/// cancels in the quotient (same discipline as [`check_apsp_scale`]).
fn check_build_scale(doc: &Json, tolerance: f64, report: &mut GateReport) {
    const SCALE_N: usize = 16384;
    const FRESH_N: usize = 1024;
    let Some(results) = doc.get("results").and_then(Json::as_arr) else {
        report.failures.push("build scale: snapshot has no 'results' array".into());
        return;
    };
    let field = |r: &Json, name: &str| r.get(name).and_then(Json::as_i64);

    let mut banded_records = 0usize;
    for r in results {
        let (Some(n), Some(band_rows), Some(peak)) =
            (field(r, "n"), field(r, "band_rows"), field(r, "peak_bytes"))
        else {
            report
                .failures
                .push("build scale: a record is missing n/band_rows/peak_bytes".into());
            return;
        };
        if band_rows >= n {
            continue; // full-matrix comparison row
        }
        banded_records += 1;
        let scheme = r.get("scheme").and_then(Json::as_str).unwrap_or("?");
        let band_cap = 4 * band_rows * n; // one band of ≤ 4-byte cells
        if peak > band_cap {
            report.failures.push(format!(
                "build scale: {scheme} n={n} banded peak {peak} B exceeds one \
                 band ({band_cap} B) — the streaming memory contract broke"
            ));
        }
        if let Some(bands) = field(r, "bands_computed") {
            let cap = 2 * ((n + band_rows - 1) / band_rows) + 2;
            if bands > cap {
                report.failures.push(format!(
                    "build scale: {scheme} n={n} computed {bands} bands (cap {cap}) — \
                     the builder thrashed the band cache"
                ));
            }
        }
    }
    report.lines.push(format!(
        "build scale: {banded_records} banded records hold the one-band memory contract"
    ));

    for required in ["theorem1", "full-table", "interval", "landmark"] {
        let present = results.iter().any(|r| {
            r.get("scheme").and_then(Json::as_str) == Some(required)
                && field(r, "n") == Some(SCALE_N as i64)
                && field(r, "band_rows").is_some_and(|b| b < SCALE_N as i64)
        });
        if !present {
            report.failures.push(format!(
                "build scale: no banded n={SCALE_N} record for {required} — \
                 regenerate with `ort bench-build`"
            ));
        }
    }

    let full_table = |band: bool| -> Option<f64> {
        results
            .iter()
            .find(|r| {
                r.get("scheme").and_then(Json::as_str) == Some("full-table")
                    && r.get("graph").and_then(Json::as_str) == Some("power_law")
                    && field(r, "n") == Some(FRESH_N as i64)
                    && (field(r, "band_rows") < Some(FRESH_N as i64)) == band
            })
            .and_then(|r| r.get("build_ms").and_then(Json::as_f64))
    };
    let (Some(base_banded), Some(base_full)) = (full_table(true), full_table(false)) else {
        report.failures.push(format!(
            "build scale: no full-table n={FRESH_N} power_law banded/full pair in the \
             snapshot — regenerate with `ort bench-build`"
        ));
        return;
    };

    let _span = ort_telemetry::span("gate.build_scale");
    let g = generators::power_law_seeded(
        FRESH_N,
        crate::bench::SPARSE_M,
        crate::bench::SPARSE_GAMMA,
        crate::bench::BENCH_SEED,
    );
    // Interleave-and-take-the-min-ratio, as in the APSP scale check.
    let mut fresh_norm = f64::INFINITY;
    let band_rows = crate::bench_build::BAND_ROWS;
    drop(std::hint::black_box(SchemeId::FullTable.build(&g).expect("full-table build")));
    for _ in 0..3 {
        let full = best_ms(
            || drop(std::hint::black_box(SchemeId::FullTable.build(&g).expect("build"))),
            1,
        );
        let banded = best_ms(
            || {
                let oracle = ort_graphs::oracle::BandedOracle::new(g.clone(), band_rows);
                drop(std::hint::black_box(
                    SchemeId::FullTable.build_with_dists(&g, &oracle).expect("banded build"),
                ));
            },
            1,
        );
        fresh_norm = fresh_norm.min(banded / full);
    }
    let base_norm = base_banded / base_full;
    report.lines.push(format!(
        "build n={FRESH_N} sparse: full-table banded/full ratio baseline {base_norm:.3}, \
         fresh {fresh_norm:.3}"
    ));
    // The snapshot ratio is itself noisy, so the gate allows double the
    // configured drift before calling a regression — this is a coarse
    // "banded construction did not fall off a cliff" tripwire, not a
    // micro-benchmark.
    if fresh_norm > base_norm * (1.0 + 2.0 * tolerance) {
        report.failures.push(format!(
            "build n={FRESH_N} sparse: banded full-table build regressed {:.0}% vs \
             full-matrix baseline ratio (tolerance {:.0}%)",
            (fresh_norm / base_norm - 1.0) * 100.0,
            2.0 * tolerance * 100.0
        ));
    }
}

/// Churn gate: static checks on the checked-in `results/CHURN.json`
/// (written by `ort churn`) plus a fresh repair-vs-rebuild speed
/// measurement.
///
/// The static half re-asserts what the sweep already judged — the
/// document must self-report `pass`, every applied event must have left
/// the repaired scheme byte-identical to a cold build, the in-place
/// patch path must actually have run, and a cell at `n ≥ 1024` must be
/// present (the smoke configuration is not allowed to shrink the
/// checked-in artifact).
///
/// The fresh half measures the one claim the deterministic document
/// cannot carry: at `n = `[`CHURN_GATE_N`], toggling a provably local
/// link (a chord between two pendant nodes hanging off the same hub —
/// its dirty set is exactly the two endpoints) through
/// [`RepairableScheme`] must be at least [`REPAIR_SPEEDUP_FLOOR`]×
/// faster than rebuilding the full-table scheme from scratch.
/// Interleave-and-take-the-min, as in the other scale checks.
///
/// [`RepairableScheme`]: ort_routing::repair::RepairableScheme
fn check_churn(doc: &Json, report: &mut GateReport) {
    use ort_routing::repair::RepairableScheme;
    use ort_routing::schemes::full_table::FullTableScheme;

    // --- static checks on the checked-in document ---
    if !matches!(doc.get("pass"), Some(Json::Bool(true))) {
        report.failures.push("churn: checked-in report does not self-report pass".into());
    }
    let Some(cells) = doc.get("cells").and_then(Json::as_arr) else {
        report.failures.push("churn: report has no 'cells' array".into());
        return;
    };
    let mut patches_total = 0i64;
    let mut has_large_cell = false;
    for cell in cells {
        let name = cell.get("name").and_then(Json::as_str).unwrap_or("?");
        let applied = cell.get("events_applied").and_then(Json::as_i64).unwrap_or(-1);
        let byte_ok = cell
            .get("checks")
            .and_then(|c| c.get("byte_identical_steps"))
            .and_then(Json::as_i64)
            .unwrap_or(-2);
        if applied <= 0 {
            report.failures.push(format!("churn: cell {name} applied no events"));
        }
        if byte_ok != applied {
            report.failures.push(format!(
                "churn: cell {name} byte-identical on {byte_ok} of {applied} steps — \
                 repair diverged from cold rebuild"
            ));
        }
        patches_total += cell
            .get("repair")
            .and_then(|r| r.get("patches"))
            .and_then(Json::as_i64)
            .unwrap_or(0);
        has_large_cell |= cell.get("n0").and_then(Json::as_i64).is_some_and(|n| n >= 1024);
    }
    if patches_total == 0 {
        report.failures.push("churn: no cell exercised the in-place patch path".into());
    }
    if !has_large_cell {
        report.failures.push(
            "churn: no cell at n ≥ 1024 in the checked-in report — regenerate with `ort churn`"
                .into(),
        );
    }
    report.lines.push(format!(
        "churn: {} cells, {patches_total} in-place patches, byte-identical throughout",
        cells.len()
    ));

    // --- fresh repair-vs-rebuild measurement ---
    let _span = ort_telemetry::span("gate.churn");
    let mut g = generators::power_law_seeded(
        CHURN_GATE_N - 2,
        crate::bench::SPARSE_M,
        crate::bench::SPARSE_GAMMA,
        crate::bench::BENCH_SEED,
    );
    // Two pendants x, y off node 0: toggling the chord {x, y} changes
    // only d(x, y) (2 ↔ 1), so the repair's dirty set is exactly {x, y}
    // — the most localized delta a connected graph admits.
    let x = g.add_node();
    let y = g.add_node();
    g.add_edge(x, 0).expect("pendant link");
    g.add_edge(y, 0).expect("pendant link");
    let mut repairable = RepairableScheme::full_table(g.clone()).expect("churn gate build");
    // Warm both directions of the toggle once.
    repairable.add_link(x, y).expect("toggle on");
    repairable.remove_link(x, y).expect("toggle off");
    let mut repair_ms = f64::INFINITY;
    let mut rebuild_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        repairable.add_link(x, y).expect("toggle on");
        repairable.remove_link(x, y).expect("toggle off");
        repair_ms = repair_ms.min(t.elapsed().as_secs_f64() * 1000.0 / 2.0);
        rebuild_ms = rebuild_ms.min(best_ms(
            || drop(std::hint::black_box(FullTableScheme::build(&g).expect("cold build"))),
            1,
        ));
    }
    let speedup = rebuild_ms / repair_ms.max(1e-6);
    report.lines.push(format!(
        "churn n={CHURN_GATE_N}: single-link repair {repair_ms:.2} ms vs cold rebuild \
         {rebuild_ms:.1} ms — {speedup:.0}x"
    ));
    if speedup < REPAIR_SPEEDUP_FLOOR {
        report.failures.push(format!(
            "churn n={CHURN_GATE_N}: single-link repair only {speedup:.1}x faster than a cold \
             rebuild (floor {REPAIR_SPEEDUP_FLOOR}x) — the incremental path has collapsed"
        ));
    }
}

/// The full gate: loads the baseline (and, when given, the APSP
/// snapshot), re-measures, and compares.
///
/// # Errors
///
/// Returns a message if a document cannot be read or parsed, or a
/// measurement fails outright; comparison failures are reported in the
/// returned [`GateReport`] instead.
pub fn check(baseline_path: &str, bench_path: Option<&str>) -> Result<GateReport, String> {
    check_all(baseline_path, bench_path, None, None, false)
}

/// As [`check`], additionally checking the scheme-construction snapshot
/// (`results/BENCH_build.json`) and the churn report
/// (`results/CHURN.json`) when given, and the memory gate
/// ([`check_mem`]) when `mem` is set — the `ort bench-gate` entry
/// point.
///
/// # Errors
///
/// As [`check`].
pub fn check_all(
    baseline_path: &str,
    bench_path: Option<&str>,
    build_path: Option<&str>,
    churn_path: Option<&str>,
    mem: bool,
) -> Result<GateReport, String> {
    let _span = ort_telemetry::span("gate.check");
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e} (run `ort bench-gate --record`)"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let (cfg, baseline) = parse_baseline(&doc)?;
    let fresh = measure(&cfg)?;
    let mut report = compare(&baseline, &fresh, cfg.tolerance);
    report.lines.insert(
        0,
        format!(
            "bench-gate: {} entries at sizes {:?}, seed {}, tolerance {:.0}%",
            baseline.len(),
            cfg.sizes,
            cfg.seed,
            cfg.tolerance * 100.0
        ),
    );
    if let Some(path) = bench_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let bench = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        check_apsp_snapshot(&bench, cfg.tolerance, &mut report);
        check_apsp_scale(&bench, cfg.tolerance, &mut report);
    }
    if let Some(path) = build_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let build = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        check_build_scale(&build, cfg.tolerance, &mut report);
    }
    if let Some(path) = churn_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let churn = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        check_churn(&churn, &mut report);
    }
    if mem {
        check_mem(&doc, cfg.tolerance, &mut report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(scheme: &'static str, n: usize, total: usize, ms: f64) -> Measurement {
        Measurement {
            scheme,
            n,
            routing_bits: total,
            port_permutation_bits: 0,
            label_bits: 0,
            total_bits: total,
            max_node_bits: total / n.max(1),
            build_ms_median: ms,
            build_ms_min: ms,
        }
    }

    #[test]
    fn compare_passes_on_identical_measurements() {
        let base = vec![meas("theorem1", 64, 1000, 2.0), meas("theorem2", 64, 800, 4.0)];
        let report = compare(&base, &base.clone(), 0.25);
        assert!(report.pass(), "failures: {:?}", report.failures);
    }

    #[test]
    fn compare_fails_on_any_bit_drift() {
        let base = vec![meas("theorem1", 64, 1000, 2.0)];
        let mut fresh = base.clone();
        fresh[0].total_bits += 1;
        let report = compare(&base, &fresh, 0.25);
        assert!(!report.pass());
        assert!(report.failures.iter().any(|f| f.contains("total bits drifted")));
    }

    #[test]
    fn compare_normalizes_uniform_slowdowns_but_catches_relative_ones() {
        let base = vec![
            meas("theorem1", 64, 1000, 2.0),
            meas("theorem2", 64, 800, 4.0),
            meas("theorem3", 64, 600, 3.0),
        ];
        // Uniformly 3x slower machine: all ratios move together — pass.
        let mut uniform = base.clone();
        for m in &mut uniform {
            m.build_ms_median *= 3.0;
            m.build_ms_min *= 3.0;
        }
        assert!(compare(&base, &uniform, 0.25).pass());
        // One scheme alone regresses 2x — fail.
        let mut relative = base.clone();
        relative[2].build_ms_median *= 2.0;
        relative[2].build_ms_min *= 2.0;
        let report = compare(&base, &relative, 0.25);
        assert!(report.failures.iter().any(|f| f.contains("theorem3")));
    }

    #[test]
    fn compare_flags_missing_and_extra_entries() {
        let base = vec![meas("theorem1", 64, 1000, 2.0)];
        let fresh = vec![meas("theorem2", 64, 800, 2.0)];
        let report = compare(&base, &fresh, 0.25);
        assert_eq!(report.failures.len(), 2);
    }

    #[test]
    fn baseline_document_round_trips() {
        let cfg = GateConfig { sizes: vec![16], seed: 3, reps: 2, tolerance: 0.5 };
        let ms = vec![meas("theorem1", 16, 512, 1.25)];
        let probes = MemProbes {
            banded_claimed: 1000,
            banded_measured: 1100,
            apsp_measured: 2000,
            apsp_u32_full: 4096,
        };
        let doc = to_json(&cfg, &ms, Some(&probes));
        let (cfg2, ms2) = parse_baseline(&Json::parse(&doc.pretty()).unwrap()).unwrap();
        assert_eq!(cfg2.sizes, cfg.sizes);
        assert_eq!(cfg2.seed, cfg.seed);
        assert_eq!(cfg2.reps, cfg.reps);
        assert!((cfg2.tolerance - cfg.tolerance).abs() < 1e-12);
        assert_eq!(ms2.len(), 1);
        assert_eq!(ms2[0].scheme, ms[0].scheme);
        assert_eq!(ms2[0].total_bits, ms[0].total_bits);
        assert!((ms2[0].build_ms_median - ms[0].build_ms_median).abs() < 1e-12);
        assert!(ms2[0].build_ms_min.is_nan(), "the floor is not persisted");
        // The mem section survives the round trip and its measured lines
        // are exactly what mask_volatile strips.
        let parsed = Json::parse(&doc.pretty()).unwrap();
        let banded = parsed.get("mem").and_then(|m| m.get("banded")).unwrap();
        assert_eq!(banded.get("measured_peak_bytes").and_then(Json::as_i64), Some(1100));
        let masked = crate::manifest::mask_volatile(&doc.pretty());
        assert!(!masked.contains("measured_peak_bytes"));
        assert!(masked.contains("claimed_peak_bytes"));
    }

    #[test]
    fn mem_gate_flags_an_injected_regression() {
        // Upper-bound (cap) behaviour is exercised end-to-end by the
        // spawned-binary test in tests/observability.rs, where no
        // parallel test can inflate the shared watermark; here only the
        // pollution-proof directions are asserted.
        let Some(p) = measure_mem() else {
            return; // allocator compiled out: nothing to audit
        };
        // The analytic claim is a guaranteed lower bound on the measured
        // sweep peak — concurrent tests can only push measured higher.
        assert!(
            p.banded_measured >= p.banded_claimed,
            "claim {} above measured {}",
            p.banded_claimed,
            p.banded_measured
        );

        // A halved baseline (the injected 2x regression) must fail: the
        // fresh measurement sits at least at the analytic claim, well
        // above half of any previous truthful measurement plus tolerance.
        let cfg = GateConfig::default();
        let halved = MemProbes {
            banded_measured: p.banded_measured / 2,
            apsp_measured: p.apsp_measured / 2,
            ..p.clone()
        };
        let doc = to_json(&cfg, &[], Some(&halved));
        let mut report = GateReport::default();
        check_mem(&Json::parse(&doc.pretty()).unwrap(), cfg.tolerance, &mut report);
        assert!(!report.pass());
        assert!(report.failures.iter().any(|f| f.contains("regressed")));
    }
}
