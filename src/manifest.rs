//! Run manifests: provenance stamped into every results file, plus the
//! `results/HISTORY.jsonl` trajectory those stamps feed.
//!
//! Every `ort` subcommand that writes a results JSON goes through
//! [`write_stamped`] (payloads built as [`Json`]) or
//! [`write_stamped_raw`] (the bench writers, which emit raw text). Both:
//!
//! 1. compute an FNV-1a 64 digest of the *payload* serialization (the
//!    document without its manifest) — the catch-all fingerprint the
//!    cross-run observatory (`ort report`) compares;
//! 2. prepend a `manifest` object: schema version, subcommand, semantic
//!    args, seeds, the digest, then the *volatile* provenance fields —
//!    `threads` (from `ORT_THREADS`), `features`, `telemetry`, `build`;
//! 3. append a one-line summary (no volatile fields) to `HISTORY.jsonl`
//!    next to the results file.
//!
//! # Byte-identity discipline
//!
//! The workspace guarantees results files identical under any
//! `ORT_THREADS`, with telemetry on or off, and with
//! `--no-default-features`. The manifest records exactly those
//! environment facts, so the volatile fields are each kept on their own
//! pretty-printed line and every byte-identity guard masks lines
//! matching `"(threads|features|telemetry|build)":` before comparing
//! (see [`VOLATILE_KEYS`] / [`mask_volatile`]). Everything else in the
//! manifest — and the entire payload, hence the digest — is exact.
//! `args` records only *semantic* parameters (`max_n=1024`), never
//! output paths, which would differ per invocation.

use ort_conformance::json::Json;

/// Manifest schema version; bumped when the manifest shape changes.
pub const SCHEMA_VERSION: i64 = 1;

/// The manifest keys that legitimately vary with the environment or the
/// compiled feature set. Byte-identity comparisons mask lines containing
/// these keys; everything else must match exactly.
pub const VOLATILE_KEYS: [&str; 4] = ["threads", "features", "telemetry", "build"];

/// Volatile *payload* keys: fields that subcommands emit inside the
/// payload (not the manifest) yet legitimately vary with the machine or
/// the compiled feature set — `host_cores` (machine parallelism, bench
/// headers) and `measured_peak_bytes` (allocator-measured peaks; exact
/// requested bytes depend on the allocation pattern of the build, and
/// absent entirely with instrumentation compiled out). Each is kept on
/// its own pretty-printed line by its writer so [`mask_volatile`] can
/// drop it without touching any exact field (masked text is only ever
/// diffed against other masked text, never parsed). The payload
/// digest is computed over the *raw* payload (measured values included),
/// so a file is always self-consistent; only cross-environment diffs
/// apply the mask.
pub const VOLATILE_PAYLOAD_KEYS: [&str; 2] = ["host_cores", "measured_peak_bytes"];

/// Drops every line carrying a volatile manifest key — the line filter
/// CI and the sink byte-identity test apply to *both* sides before
/// diffing results files.
#[must_use]
pub fn mask_volatile(text: &str) -> String {
    text.lines()
        .filter(|line| {
            !VOLATILE_KEYS
                .iter()
                .chain(VOLATILE_PAYLOAD_KEYS.iter())
                .any(|k| line.contains(&format!("\"{k}\":")))
        })
        .map(|line| format!("{line}\n"))
        .collect()
}

/// What a subcommand declares about itself for the manifest.
#[derive(Debug, Clone)]
pub struct RunInfo {
    /// The `ort` subcommand name.
    pub subcommand: &'static str,
    /// Semantic parameters as `key=value` pairs joined by spaces
    /// (never output paths).
    pub args: String,
    /// The seeds the run is deterministic in, joined by commas.
    pub seeds: String,
}

impl RunInfo {
    /// A new run description.
    #[must_use]
    pub fn new(subcommand: &'static str, args: impl Into<String>, seeds: impl Into<String>) -> Self {
        RunInfo { subcommand, args: args.into(), seeds: seeds.into() }
    }
}

/// The compiled feature set, as a stable comma-joined list.
#[must_use]
pub fn feature_set() -> String {
    let mut fs = Vec::new();
    if cfg!(feature = "parallel") {
        fs.push("parallel");
    }
    if cfg!(feature = "telemetry") {
        fs.push("telemetry");
    }
    if cfg!(feature = "alloc-telemetry") {
        fs.push("alloc-telemetry");
    }
    if fs.is_empty() {
        "none".to_string()
    } else {
        fs.join(",")
    }
}

/// The build-info string behind `ort --version`, reused verbatim as the
/// manifest's `build` provenance field.
#[must_use]
pub fn build_info() -> String {
    format!(
        "ort {} (features: {}; telemetry: {}; alloc-instrumentation: {})",
        env!("CARGO_PKG_VERSION"),
        feature_set(),
        if ort_telemetry::enabled() { "on" } else { "off" },
        if ort_telemetry::alloc::installed() { "on" } else { "off" }
    )
}

/// The raw `ORT_THREADS` value, or `"default"` when unset/empty.
#[must_use]
pub fn threads_setting() -> String {
    match std::env::var("ORT_THREADS") {
        Ok(v) if !v.is_empty() => v,
        _ => "default".to_string(),
    }
}

/// FNV-1a 64-bit over `data` — the workspace's offline fingerprint (no
/// external hash crates). Collision-resistant enough to flag drift; any
/// intentional payload change changes it.
#[must_use]
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The digest string stamped into manifests: `fnv64:<16 hex digits>`
/// over the payload's serialization.
#[must_use]
pub fn digest_of(payload_text: &str) -> String {
    format!("fnv64:{:016x}", fnv64(payload_text.as_bytes()))
}

/// The manifest object for `info` with the given payload digest. Field
/// order is fixed: exact fields first, volatile fields last (each lands
/// on its own pretty-printed line for masking).
#[must_use]
pub fn manifest_json(info: &RunInfo, digest: &str) -> Json {
    Json::obj(vec![
        ("schema", Json::Int(SCHEMA_VERSION)),
        ("subcommand", Json::Str(info.subcommand.to_string())),
        ("args", Json::Str(info.args.clone())),
        ("seeds", Json::Str(info.seeds.clone())),
        ("digest", Json::Str(digest.to_string())),
        ("threads", Json::Str(threads_setting())),
        ("features", Json::Str(feature_set())),
        ("telemetry", Json::Str(if ort_telemetry::enabled() { "on" } else { "off" }.to_string())),
        ("build", Json::Str(build_info())),
    ])
}

/// The one-line `HISTORY.jsonl` record for a stamped write: basename,
/// subcommand, schema, args, seeds, digest — and nothing volatile, so
/// the history file is byte-identical across environments.
#[must_use]
pub fn history_line(file_name: &str, info: &RunInfo, digest: &str) -> String {
    Json::obj(vec![
        ("file", Json::Str(file_name.to_string())),
        ("subcommand", Json::Str(info.subcommand.to_string())),
        ("schema", Json::Int(SCHEMA_VERSION)),
        ("args", Json::Str(info.args.clone())),
        ("seeds", Json::Str(info.seeds.clone())),
        ("digest", Json::Str(digest.to_string())),
    ])
    .compact()
}

fn ensure_parent(path: &std::path::Path) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn append_history(out_path: &str, info: &RunInfo, digest: &str) -> Result<(), String> {
    use std::io::Write as _;
    let path = std::path::Path::new(out_path);
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or(out_path);
    let history = dir.join("HISTORY.jsonl");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .map_err(|e| format!("cannot open {}: {e}", history.display()))?;
    writeln!(f, "{}", history_line(name, info, digest)).map_err(|e| e.to_string())
}

/// Stamps `payload` (an object) with a manifest as its first key and
/// returns the full document.
///
/// # Panics
///
/// Panics if `payload` is not a JSON object — every results file is one.
#[must_use]
pub fn stamp(payload: &Json, info: &RunInfo) -> Json {
    let digest = digest_of(&payload.pretty());
    let Json::Obj(fields) = payload else {
        panic!("results payloads are JSON objects");
    };
    let mut out = vec![("manifest".to_string(), manifest_json(info, &digest))];
    out.extend(fields.iter().cloned());
    Json::Obj(out)
}

/// Writes the stamped document to `out_path` and appends the history
/// line next to it.
///
/// # Errors
///
/// Propagates I/O failures as displayable strings.
pub fn write_stamped(out_path: &str, payload: &Json, info: &RunInfo) -> Result<(), String> {
    let digest = digest_of(&payload.pretty());
    ensure_parent(std::path::Path::new(out_path))?;
    std::fs::write(out_path, stamp(payload, info).pretty()).map_err(|e| e.to_string())?;
    append_history(out_path, info, &digest)
}

/// As [`write_stamped`] for writers that build their JSON as raw text
/// (the bench snapshots): the manifest block is spliced in directly
/// after the document's opening `{`, re-indented to depth 1. The digest
/// covers the original `payload_text`.
///
/// # Errors
///
/// Fails if `payload_text` is not an object document, or on I/O errors.
pub fn write_stamped_raw(out_path: &str, payload_text: &str, info: &RunInfo) -> Result<(), String> {
    let digest = digest_of(payload_text);
    let rest = payload_text
        .trim_start()
        .strip_prefix('{')
        .ok_or("raw results payload must be a JSON object")?;
    let manifest = manifest_json(info, &digest).pretty();
    // Re-indent the manifest's pretty form (depth 0) to sit at depth 1.
    let mut block = String::from("{\n  \"manifest\": ");
    for (i, line) in manifest.trim_end().lines().enumerate() {
        if i > 0 {
            block.push_str("\n  ");
        }
        block.push_str(line);
    }
    block.push(',');
    ensure_parent(std::path::Path::new(out_path))?;
    std::fs::write(out_path, format!("{block}{rest}")).map_err(|e| e.to_string())?;
    append_history(out_path, info, &digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> RunInfo {
        RunInfo::new("testcmd", "max_n=64", "1")
    }

    #[test]
    fn stamp_puts_manifest_first_and_digest_matches() {
        let payload = Json::obj(vec![("suite", Json::Str("x".into())), ("pass", Json::Bool(true))]);
        let stamped = stamp(&payload, &info());
        let Json::Obj(fields) = &stamped else { panic!("object") };
        assert_eq!(fields[0].0, "manifest");
        assert_eq!(fields[1].0, "suite");
        let digest = stamped.get("manifest").unwrap().get("digest").unwrap().as_str().unwrap();
        assert_eq!(digest, digest_of(&payload.pretty()));
        // Round-trips through the workspace parser.
        let back = Json::parse(&stamped.pretty()).expect("parse");
        assert_eq!(back.get("manifest").unwrap().get("schema").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn masking_strips_exactly_the_volatile_lines() {
        let stamped = stamp(&Json::obj(vec![("pass", Json::Bool(true))]), &info()).pretty();
        let masked = mask_volatile(&stamped);
        for k in VOLATILE_KEYS {
            assert!(stamped.contains(&format!("\"{k}\":")), "{k} must be stamped");
            assert!(!masked.contains(&format!("\"{k}\":")), "{k} must be masked");
        }
        // The exact provenance (and the payload) survives the mask.
        for k in ["schema", "subcommand", "args", "seeds", "digest", "pass"] {
            assert!(masked.contains(&format!("\"{k}\":")), "{k} must survive the mask");
        }
    }

    #[test]
    fn raw_splice_parses_and_preserves_payload() {
        let payload = "{\n  \"bench\": \"apsp\",\n  \"results\": []\n}\n";
        let dir = std::env::temp_dir().join("ort-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("RAW.json");
        write_stamped_raw(out.to_str().unwrap(), payload, &info()).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let doc = Json::parse(&text).expect("spliced document parses");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("apsp"));
        let digest = doc.get("manifest").unwrap().get("digest").unwrap().as_str().unwrap();
        assert_eq!(digest, digest_of(payload));
        // History picked up the write.
        let history = std::fs::read_to_string(dir.join("HISTORY.jsonl")).unwrap();
        let last = history.lines().last().unwrap();
        assert!(last.contains("\"file\":\"RAW.json\"") || last.contains("\"file\": \"RAW.json\""));
        assert!(last.contains(&digest_of(payload)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn history_line_has_no_volatile_fields() {
        let line = history_line("X.json", &info(), "fnv64:0000000000000000");
        for k in VOLATILE_KEYS {
            assert!(!line.contains(&format!("\"{k}\"")), "{k} must not reach history");
        }
        assert!(!line.contains('\n'));
    }

    #[test]
    fn build_info_names_the_feature_state() {
        let s = build_info();
        assert!(s.starts_with("ort "), "{s}");
        assert!(s.contains("features:"), "{s}");
        assert_eq!(s.contains("telemetry: on"), ort_telemetry::enabled());
        assert_eq!(
            s.contains("alloc-instrumentation: on"),
            ort_telemetry::alloc::installed(),
            "{s}"
        );
    }

    #[test]
    fn masking_strips_volatile_payload_lines_and_nothing_else() {
        // A two-line bench-style record: the measured field sits on its
        // own continuation line, exactly as the bench writers emit it, so
        // masking removes just that line.
        let text = "{\n  \"results\": [\n    { \"n\": 64, \"peak_bytes\": 4096,\n      \"measured_peak_bytes\": 5000 },\n    { \"n\": 128, \"peak_bytes\": 8192 }\n  ],\n  \"host_cores\": 8\n}\n";
        let masked = mask_volatile(text);
        for k in VOLATILE_PAYLOAD_KEYS {
            assert!(text.contains(&format!("\"{k}\":")), "{k} present before mask");
            assert!(!masked.contains(&format!("\"{k}\":")), "{k} must be masked");
        }
        // The quote-prefixed match keeps the analytic field intact: the
        // substring `peak_bytes` alone must not trigger the filter.
        assert_eq!(masked.matches("\"peak_bytes\":").count(), 2, "{masked}");
        assert!(masked.contains("\"results\":"), "{masked}");
    }
}
