//! Experiment PERF-APSP: the APSP engine snapshot behind `ort bench` and
//! `results/BENCH_apsp.json`.
//!
//! Two workloads:
//!
//! * **Dense** `G(n, 1/2)` at small `n` — the paper's regime, where the
//!   bitset engine wins (queue/bitset/default, as since PR 1).
//! * **Sparse** power-law graphs at `n = 4096` and `n = 16384` — the
//!   Internet-scale regime this layer exists for, where the tiled
//!   multi-source engine wins and compact `u8` cells cut the matrix to a
//!   quarter of the historical `u32` footprint.
//!
//! Every record carries the engine, graph family, wall-clock floor, the
//! actual tile size (0 for untiled engines), the distance cell width, and
//! the peak oracle bytes of the run — so memory wins are tracked in the
//! trajectory alongside speed. `ort bench-gate` reads the snapshot back
//! and fails CI when an engine ratio or the memory contract regresses.

use std::hint::black_box;
use std::time::Instant;

use ort_graphs::generators;
use ort_graphs::oracle::{BandedOracle, Distances};
use ort_graphs::paths::{Apsp, ApspEngine};
use ort_graphs::Graph;

/// Default snapshot location, shared with `ort bench-gate`.
pub const DEFAULT_OUT: &str = "results/BENCH_apsp.json";

/// Sparse-workload attachment count (edges per new node).
pub const SPARSE_M: usize = 2;
/// Sparse-workload power-law exponent.
pub const SPARSE_GAMMA: f64 = 2.5;
/// Seed for every bench graph.
pub const BENCH_SEED: u64 = 1;

/// What to measure.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Dense `G(n, 1/2)` sizes.
    pub dense_sizes: Vec<usize>,
    /// Sparse power-law sizes.
    pub sparse_sizes: Vec<usize>,
    /// Skip any size above this bound (0 = no cap) — the CI smoke knob.
    pub max_n: usize,
    /// Where to write the JSON snapshot.
    pub out_path: String,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            dense_sizes: vec![128, 256, 512],
            sparse_sizes: vec![4096, 16384],
            max_n: 0,
            out_path: DEFAULT_OUT.into(),
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Engine label (`queue_serial`, `bitset_serial`, `tiled_serial`,
    /// `banded_tiled`, `default`).
    pub engine: &'static str,
    /// Graph family label (`dense` or `sparse`).
    pub graph: &'static str,
    /// Node count.
    pub n: usize,
    /// Best-of-reps wall-clock milliseconds.
    pub ms: f64,
    /// Sources per tile for tiled runs, 0 for untiled engines.
    pub tile: usize,
    /// Distance cell width the run stored (`u8`/`u16`/`u32`).
    pub width: &'static str,
    /// Peak distance-cell bytes held at any moment during the run.
    pub peak_bytes: usize,
    /// Region peak from the instrumented allocator for one serial-probe
    /// run — the measured counterpart of the analytic `peak_bytes`.
    /// `None` (serialised as `0`) when the allocator is compiled out.
    pub measured_peak_bytes: Option<u64>,
}

/// Best-of-`reps` wall-clock milliseconds for `f` (after one warmup call).
fn best_ms<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure_full(
    records: &mut Vec<BenchRecord>,
    engine_label: &'static str,
    graph_label: &'static str,
    g: &Graph,
    compute: impl Fn(&Graph) -> Apsp,
    reps: usize,
) {
    // The probe run doubles as the measured-memory region: its region
    // peak is the audit counterpart of the analytic `heap_bytes`.
    let region = ort_telemetry::alloc::installed()
        .then(|| ort_telemetry::alloc::mem_span("bench.measure"));
    let probe = compute(g);
    let measured = region.map(|s| s.finish().region_peak_bytes);
    let (tile, width, peak) = (
        if engine_label.contains("tiled") { ApspEngine::tile_sources(g.node_count()) } else { 0 },
        probe.cell_width().name(),
        probe.heap_bytes(),
    );
    drop(probe);
    let ms = best_ms(|| drop(black_box(compute(g))), reps);
    records.push(BenchRecord {
        engine: engine_label,
        graph: graph_label,
        n: g.node_count(),
        ms,
        tile,
        width,
        peak_bytes: peak,
        measured_peak_bytes: measured,
    });
}

/// One full banded sweep: every band is computed (and retired) once.
fn banded_sweep(g: &Graph, band_rows: usize) {
    let oracle = BandedOracle::with_engine(g.clone(), band_rows, ApspEngine::Tiled);
    sweep_oracle(&oracle, g.node_count(), band_rows);
}

/// Touches one source per band in ascending order, forcing each band to
/// be computed (and the previous one retired) exactly once.
fn sweep_oracle(oracle: &BandedOracle, n: usize, band_rows: usize) {
    let mut u = 0;
    while u < n {
        black_box(oracle.distance(u, 0));
        u += band_rows;
    }
}

/// Runs the snapshot, writes `opts.out_path`, and returns the records.
///
/// # Errors
///
/// Returns a message if the snapshot file cannot be written.
pub fn run(opts: &BenchOptions) -> Result<Vec<BenchRecord>, String> {
    let _span = ort_telemetry::span("bench.apsp");
    let keep = |&n: &usize| opts.max_n == 0 || n <= opts.max_n;
    let mut records: Vec<BenchRecord> = Vec::new();

    for &n in opts.dense_sizes.iter().filter(|n| keep(n)) {
        let g = generators::gnp_half(n, BENCH_SEED);
        // Enough reps that best-of reaches the uncontended floor even on
        // a noisy host — `ort bench-gate` compares ratios against these
        // numbers, so a one-off slow rep here would consume its margin.
        let reps = 5;
        let m = &mut records;
        measure_full(m, "queue_serial", "dense", &g, |g| {
            Apsp::compute_serial_with_engine(g, ApspEngine::Queue)
        }, reps);
        measure_full(m, "bitset_serial", "dense", &g, |g| {
            Apsp::compute_serial_with_engine(g, ApspEngine::Bitset)
        }, reps);
        measure_full(m, "default", "dense", &g, Apsp::compute, reps);
    }

    for &n in opts.sparse_sizes.iter().filter(|n| keep(n)) {
        let g = generators::power_law_seeded(n, SPARSE_M, SPARSE_GAMMA, BENCH_SEED);
        // Wall clock per run grows with n; keep the total snapshot within
        // the CI smoke budget by shrinking reps as n grows.
        let reps = if n > 8192 { 1 } else { 3 };
        let m = &mut records;
        measure_full(m, "queue_serial", "sparse", &g, |g| {
            Apsp::compute_serial_with_engine(g, ApspEngine::Queue)
        }, reps);
        // The bitset engine's per-level cost is Θ(frontier · n/64) words
        // regardless of sparsity: already the losing engine at 4096 and
        // prohibitive at 16384, so it is only sampled at the smaller size.
        if n <= 8192 {
            measure_full(m, "bitset_serial", "sparse", &g, |g| {
                Apsp::compute_serial_with_engine(g, ApspEngine::Bitset)
            }, reps);
        }
        measure_full(m, "tiled_serial", "sparse", &g, |g| {
            Apsp::compute_serial_with_engine(g, ApspEngine::Tiled)
        }, reps);
        measure_full(m, "default", "sparse", &g, Apsp::compute, reps);
        // Streaming mode: same tiled traversals, one band resident at a
        // time — the peak-bytes row that makes the memory win visible.
        // The oracle is built *outside* the measured region so the graph
        // clone is not charged to the streaming claim; the sweep itself
        // (band fills plus engine scratch) is what `peak_bytes` models.
        let band_rows = ApspEngine::tile_sources(n);
        let banded = BandedOracle::with_engine(g.clone(), band_rows, ApspEngine::Tiled);
        let measured = ort_telemetry::alloc::installed().then(|| {
            let span = ort_telemetry::alloc::mem_span("bench.measure");
            sweep_oracle(&banded, n, band_rows);
            span.finish().region_peak_bytes
        });
        let ms = best_ms(|| banded_sweep(&g, band_rows), reps);
        records.push(BenchRecord {
            engine: "banded_tiled",
            graph: "sparse",
            n,
            ms,
            tile: band_rows,
            width: ort_graphs::dist::width_for(&g).name(),
            peak_bytes: banded.peak_bytes(),
            measured_peak_bytes: measured,
        });
    }

    let json = to_json(&records);
    crate::manifest::write_stamped_raw(
        &opts.out_path,
        &json,
        &crate::manifest::RunInfo::new(
            "bench",
            format!("max_n={}", opts.max_n),
            BENCH_SEED.to_string(),
        ),
    )
    .map_err(|e| format!("cannot write {}: {e}", opts.out_path))?;
    Ok(records)
}

fn ms_of(records: &[BenchRecord], engine: &str, n: usize) -> Option<f64> {
    records.iter().find(|r| r.engine == engine && r.n == n).map(|r| r.ms)
}

/// Serialises the snapshot in the `results/BENCH_apsp.json` format
/// (`results[].engine/n/ms` are load-bearing for `ort bench-gate`).
#[must_use]
pub fn to_json(records: &[BenchRecord]) -> String {
    #[cfg(feature = "parallel")]
    let threads = ort_graphs::paths::configured_threads();
    #[cfg(not(feature = "parallel"))]
    let threads = 1usize;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"apsp\",\n");
    json.push_str(&format!(
        "  \"graph\": \"dense: gnp_half(n, seed={BENCH_SEED}); sparse: power_law(n, m={SPARSE_M}, gamma={SPARSE_GAMMA}, seed={BENCH_SEED})\",\n"
    ));
    json.push_str("  \"unit\": \"ms, best-of-reps wall clock\",\n");
    json.push_str(&format!("  \"parallel_feature\": {},\n", cfg!(feature = "parallel")));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    if let (Some(q), Some(d)) = (ms_of(records, "queue_serial", 512), ms_of(records, "default", 512))
    {
        json.push_str(&format!("  \"speedup_default_vs_queue_serial_n512\": {:.2},\n", q / d));
    }
    if let (Some(b), Some(t)) =
        (ms_of(records, "bitset_serial", 4096), ms_of(records, "tiled_serial", 4096))
    {
        json.push_str(&format!("  \"speedup_tiled_vs_bitset_serial_n4096\": {:.2},\n", b / t));
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        // `measured_peak_bytes` rides on its own continuation line so
        // `manifest::mask_volatile` can drop it: the measured value is a
        // host/feature-set fact (0 when the allocator is compiled out),
        // and stripping the whole line leaves the masked text identical
        // across instrumented and uninstrumented builds.
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"graph\": \"{}\", \"n\": {}, \"ms\": {:.3}, \"tile\": {}, \"width\": \"{}\", \"peak_bytes\": {}, \"u32_full_bytes\": {},\n      \"measured_peak_bytes\": {}}}{sep}\n",
            r.engine,
            r.graph,
            r.n,
            r.ms,
            r.tile,
            r.width,
            r.peak_bytes,
            r.n * r.n * 4,
            r.measured_peak_bytes.unwrap_or(0),
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Human-readable summary of a snapshot run.
#[must_use]
pub fn summary(records: &[BenchRecord], out_path: &str) -> String {
    let mut out = String::from("== APSP engine snapshot ==\n\n");
    for r in records {
        out.push_str(&format!(
            "  {:<14} {:<6} n={:<6} {:>10.3} ms  width={:<3} peak={:>7} KiB{}{}\n",
            r.engine,
            r.graph,
            r.n,
            r.ms,
            r.width,
            r.peak_bytes / 1024,
            r.measured_peak_bytes
                .map_or(String::new(), |m| format!("  measured={:>7} KiB", m / 1024)),
            if r.tile > 0 { format!("  tile={}", r.tile) } else { String::new() },
        ));
    }
    if let (Some(q), Some(d)) = (ms_of(records, "queue_serial", 512), ms_of(records, "default", 512))
    {
        out.push_str(&format!("\n  default vs queue_serial at n=512 (dense): {:.2}x\n", q / d));
    }
    if let (Some(b), Some(t)) =
        (ms_of(records, "bitset_serial", 4096), ms_of(records, "tiled_serial", 4096))
    {
        out.push_str(&format!("  tiled vs bitset_serial at n=4096 (sparse): {:.2}x\n", b / t));
    }
    out.push_str(&format!("  wrote {out_path}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_runs_and_serialises_at_tiny_sizes() {
        let dir = std::env::temp_dir().join("ort_bench_test");
        let out = dir.join("BENCH_apsp.json");
        let opts = BenchOptions {
            dense_sizes: vec![32],
            sparse_sizes: vec![64],
            max_n: 0,
            out_path: out.to_string_lossy().into_owned(),
        };
        let records = run(&opts).unwrap();
        // 3 dense engines + 5 sparse rows (queue/bitset/tiled/default/banded).
        assert_eq!(records.len(), 8);
        assert!(records.iter().all(|r| r.ms.is_finite() && r.peak_bytes > 0));
        let tiled = records.iter().find(|r| r.engine == "tiled_serial").unwrap();
        assert_eq!(tiled.tile, ApspEngine::tile_sources(64));
        let banded = records.iter().find(|r| r.engine == "banded_tiled").unwrap();
        // The banded claim now carries the engine scratch; the tiled
        // full-matrix record's `peak_bytes` is the bare store, so allow
        // the same scratch on the right-hand side.
        let g = generators::power_law_seeded(64, SPARSE_M, SPARSE_GAMMA, BENCH_SEED);
        assert!(banded.peak_bytes <= tiled.peak_bytes + ApspEngine::Tiled.scratch_bytes(&g, 64));
        if ort_telemetry::alloc::installed() {
            // Every record's measured region peak must at least cover the
            // analytic distance-cell claim — the bench-level audit.
            for r in &records {
                let m = r.measured_peak_bytes.expect("allocator installed");
                assert!(
                    m >= r.peak_bytes as u64,
                    "{} n={}: measured {} < claimed {}",
                    r.engine,
                    r.n,
                    m,
                    r.peak_bytes
                );
            }
        }
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"engine\": \"tiled_serial\""));
        assert!(json.contains("\"peak_bytes\""));
        assert!(json.contains("\"measured_peak_bytes\""));
        assert!(!summary(&records, "x").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_n_caps_the_workload() {
        let dir = std::env::temp_dir().join("ort_bench_cap_test");
        let out = dir.join("BENCH_apsp.json");
        let opts = BenchOptions {
            dense_sizes: vec![32, 64],
            sparse_sizes: vec![96],
            max_n: 40,
            out_path: out.to_string_lossy().into_owned(),
        };
        let records = run(&opts).unwrap();
        assert!(records.iter().all(|r| r.n <= 40));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
