//! # Optimal Routing Tables
//!
//! A production-quality Rust reproduction of Buhrman, Hoepman & Vitányi,
//! *"Optimal Routing Tables"*, PODC 1996 — compact routing schemes, their
//! bit-exact encodings, and the incompressibility machinery behind the
//! paper's matching lower bounds.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`bitio`] — bit vectors and the paper's self-delimiting codes.
//! * [`graphs`] — graphs, generators (incl. Kolmogorov-random stand-ins and
//!   the Figure 1 graph), shortest paths, ports, labels, Lemma 1–3 checks.
//! * [`kolmogorov`] — randomness-deficiency estimation and the constructive
//!   proof codecs of Lemmas 1–3 / Theorems 6 & 10.
//! * [`routing`] — the nine routing models, the Theorem 1–5 schemes,
//!   baselines, verification, and the Theorem 6–10 lower-bound accounting.
//! * [`simnet`] — a message-passing simulator that runs schemes from their
//!   decoded bits only.
//! * [`conformance`] — the cross-scheme differential oracle, snapshot
//!   fuzzer, and machine-checked Table 1 bound suite behind
//!   `ort conformance` and `results/CONFORMANCE.json`.
//!
//! Four CLI-facing modules live in this crate directly:
//!
//! * [`bench`] — the APSP engine snapshot behind `ort bench` and
//!   `results/BENCH_apsp.json` (dense + sparse large-`n` workloads, with
//!   tile size, cell width and peak oracle bytes per record).
//! * [`bench_build`] — the scheme-construction snapshot behind
//!   `ort bench-build` and `results/BENCH_build.json` (banded vs
//!   full-matrix build time and peak distance bytes at `n` up to 16384).
//! * [`profile`] — the instrumented single-scheme run behind
//!   `ort profile` (span tree, counters, per-node bit accounting).
//! * [`gate`] — the bit-drift and perf-regression gate behind
//!   `ort bench-gate` and `results/TELEMETRY_BASELINE.json`.
//! * [`trace`] — the capture-and-explain run behind `ort trace`
//!   (per-message route tracing with hop-by-hop stretch attribution).
//! * [`sweep`] — the fault-intensity sweep behind `ort resilience`,
//!   including its trace-backed diagnostics
//!   (`results/RESILIENCE_DIAGNOSTICS.json`).
//! * [`churn`] — the continuous-churn sweep behind `ort churn` and
//!   `results/CHURN.json` (incremental repair vs cold rebuild,
//!   byte-identity and verify-equality after every event).
//! * [`manifest`] — run manifests: every results file carries provenance
//!   (subcommand, args, seeds, payload digest, thread/feature state) and
//!   appends a one-line summary to `results/HISTORY.jsonl`.
//! * [`report`] — the cross-run regression observatory behind
//!   `ort report` and `results/REPORT.json` (aggregates results files,
//!   machine-checks bit-exact fields and gated ratios across runs).
//!
//! # Quickstart
//!
//! ```
//! use optimal_routing_tables::graphs::generators;
//! use optimal_routing_tables::routing::schemes::theorem1::Theorem1Scheme;
//! use optimal_routing_tables::routing::scheme::RoutingScheme;
//! use optimal_routing_tables::routing::verify;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A Kolmogorov-random graph stand-in: uniform G(n, 1/2).
//! let g = generators::gnp_half(64, 7);
//!
//! // Build the paper's Theorem 1 shortest-path scheme (≤ 6n bits/node).
//! let scheme = Theorem1Scheme::build(&g)?;
//!
//! // Its size is honest: the bits really decode back into working routers.
//! let total_bits = scheme.total_size_bits();
//! assert!(total_bits <= 6 * 64 * 64);
//!
//! // And it routes every pair along shortest paths.
//! let report = verify::verify_scheme(&g, &scheme)?;
//! assert_eq!(report.max_stretch(), Some(1.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod bench;
pub mod bench_build;
pub mod churn;
pub mod gate;
pub mod manifest;
pub mod profile;
pub mod report;
pub mod sweep;
pub mod trace;

pub use ort_bitio as bitio;
pub use ort_conformance as conformance;
pub use ort_graphs as graphs;
pub use ort_kolmogorov as kolmogorov;
pub use ort_routing as routing;
pub use ort_simnet as simnet;
pub use ort_telemetry as telemetry;
