//! `ort profile` — one fully instrumented run of a single scheme.
//!
//! The run is the CLI's observability showcase: it resets the telemetry
//! registry, executes graph generation → scheme construction → delivery
//! verification → bit accounting under nested spans, and renders
//!
//! * the aggregated **span tree** (every construction phase with call
//!   counts and wall-clock nanoseconds),
//! * the **counter table** (frontier expansions, oracle reuse, …),
//! * the **per-node bit breakdown** — routing-function bits vs
//!   port-permutation bits vs label bits, which reconcile *exactly* with
//!   [`total_size_bits`]; any mismatch is an encoder bug and the profile
//!   refuses to print.
//!
//! [`total_size_bits`]: ort_routing::scheme::RoutingScheme::total_size_bits
//!
//! The same rendered report is returned as a string so tests can assert
//! on its shape without capturing stdout.

use ort_conformance::registry::SchemeId;
use ort_graphs::generators;
use ort_graphs::paths::{Apsp, ApspEngine};
use ort_routing::accounting::BitBreakdown;
use ort_routing::verify;
use ort_telemetry::FieldValue;

/// The rendered profile plus the headline numbers tests assert on.
#[derive(Debug)]
pub struct ProfileReport {
    /// The human-readable report (span tree, counters, bit table).
    pub text: String,
    /// Distinct span paths recorded during the run.
    pub distinct_phases: usize,
    /// The scheme's total charged bits — equals the bit table's total row.
    pub bits_total: usize,
}

/// Runs `scheme_name` on `G(n, 1/2)` with `seed` under full
/// instrumentation and renders the profile.
///
/// # Errors
///
/// Returns a message if the scheme name is unknown, the scheme refuses
/// the graph, verification fails to run, or the bit breakdown does not
/// reconcile with the scheme's charged total.
pub fn run_profile(scheme_name: &str, n: usize, seed: u64) -> Result<ProfileReport, String> {
    let id = SchemeId::from_name(scheme_name)
        .ok_or_else(|| format!("unknown scheme '{scheme_name}'; try `ort schemes`"))?;

    ort_telemetry::reset();
    let (scheme, verify_report, breakdown) = {
        let _profile = ort_telemetry::span_with(
            "profile",
            &[
                ("scheme", FieldValue::Str(id.name())),
                ("n", FieldValue::Int(n as u64)),
                ("seed", FieldValue::Int(seed)),
            ],
        );
        let g = {
            let _s = ort_telemetry::span("profile.graph");
            generators::gnp_half(n, seed)
        };
        let scheme = {
            let _s = ort_telemetry::span("profile.build");
            id.build(&g)
                .map_err(|e| format!("{scheme_name} refused G({n}, 1/2) seed {seed}: {e}"))?
        };
        let verify_report = {
            let _s = ort_telemetry::span("profile.verify");
            verify::verify_scheme_sampled(&g, scheme.as_ref(), if n >= 256 { 7 } else { 1 })
                .map_err(|e| e.to_string())?
        };
        let breakdown = {
            let _s = ort_telemetry::span("profile.accounting");
            BitBreakdown::of(scheme.as_ref())
        };
        (scheme, verify_report, breakdown)
    };
    let snap = ort_telemetry::snapshot();

    if breakdown.total() != scheme.total_size_bits() {
        return Err(format!(
            "bit breakdown does not reconcile: {} != total_size_bits() {}",
            breakdown.total(),
            scheme.total_size_bits()
        ));
    }

    let mut text = String::new();
    text.push_str(&format!(
        "== ort profile: {} on G({n}, 1/2) seed {seed} [model {}] ==\n\n",
        id.name(),
        scheme.model()
    ));
    if ort_telemetry::enabled() {
        text.push_str(&snap.summary_tree());
    } else {
        text.push_str(
            "telemetry is compiled out (built without the `telemetry` feature); \
             span tree and counters are empty\n",
        );
    }

    text.push_str("\nbit accounting (per node, bits):\n");
    text.push_str(&format!(
        "  {:>5} {:>12} {:>10} {:>8} {:>12}\n",
        "node", "routing", "port-perm", "label", "total"
    ));
    for (u, b) in breakdown.nodes.iter().enumerate() {
        text.push_str(&format!(
            "  {:>5} {:>12} {:>10} {:>8} {:>12}\n",
            u,
            b.routing,
            b.port_permutation,
            b.label,
            b.total()
        ));
    }
    text.push_str(&format!(
        "  {:>5} {:>12} {:>10} {:>8} {:>12}\n",
        "total",
        breakdown.routing_bits(),
        breakdown.port_permutation_bits(),
        breakdown.label_bits(),
        breakdown.total()
    ));
    text.push_str(&format!(
        "  table size: {} bits (breakdown reconciles exactly); max node: {} bits\n",
        scheme.total_size_bits(),
        breakdown.max_node_bits()
    ));

    text.push_str(&format!(
        "\nverification: {} pairs, {} failures, max stretch {:?}\n",
        verify_report.delivered,
        verify_report.failures.len(),
        verify_report.max_stretch()
    ));

    // Value-domain distributions recorded during the run (hop counts,
    // stretch, per-node bits): exact counts, log-bucketed percentiles.
    let value_hists: Vec<_> = snap.hists.iter().filter(|h| !h.timing).collect();
    if !value_hists.is_empty() {
        text.push_str("\ndistributions (value domains, exact counts):\n");
        for h in value_hists {
            text.push_str(&format!("  {:<28}{}\n", h.name, h.percentile_line()));
        }
    }

    let distinct_phases = snap.span_paths().len();
    text.push_str(&format!("distinct phases recorded: {distinct_phases}\n"));

    Ok(ProfileReport { text, distinct_phases, bits_total: breakdown.total() })
}

/// Multiplicative headroom a measured APSP region peak may sit above its
/// analytic claim (store + engine scratch). The claim is a guaranteed
/// lower bound; the slack absorbs allocator rounding and per-row
/// traversal transients the analytic model deliberately omits.
pub const MEM_SLACK_APSP: f64 = 1.5;
/// Multiplicative headroom for the build phase's *net* allocation above
/// the scheme's charged table bytes: runtime representations carry `Vec`
/// capacities, per-node structs and decoded indices next to the packed
/// bits, so the factor is generous — the check is a "tables are not an
/// order of magnitude fatter than charged" tripwire.
pub const MEM_SLACK_BUILD: f64 = 16.0;
/// Per-edge byte allowance added to the build cap. The paper's local
/// routing model charges *label* bits only; port assignments and other
/// adjacency-derived structures (O(m) by construction — measured at
/// ~16 B/edge for [`ort_graphs::ports::PortAssignment`]'s two entries
/// per undirected edge) are deliberately outside `total_size_bits`, so
/// the measured net of a sublinear-bit scheme legitimately sits an
/// adjacency-sized term above its charged bytes.
pub const MEM_BUILD_EDGE_OVERHEAD: u64 = 32;
/// Absolute headroom added to every claim: size-independent transients
/// (hist registration, span bookkeeping, small scratch vectors).
pub const MEM_ABS_SLACK: u64 = 256 * 1024;

/// One row of the `--mem` reconciliation table.
struct MemPhase {
    phase: &'static str,
    /// Analytic figure the measured value must cover, if the phase has one.
    claimed: Option<u64>,
    /// The measured value the claim is checked against (`region peak` for
    /// peak claims, `net` for the build phase's retained-bytes claim).
    audited: u64,
    /// Upper cap on `audited` (claim × slack + modelled allowances);
    /// meaningful only when `claimed` is `Some`.
    cap: u64,
    peak: u64,
    net: i64,
}

/// As [`run_profile`], additionally auditing every phase's memory
/// against the instrumented allocator (`ort profile --mem`).
///
/// The run is serial (`Apsp::compute_serial` + the banded-equivalent
/// `build_with_dists` path over that oracle), so region attribution is
/// exact. Each phase runs inside a [`ort_telemetry::alloc::mem_span`]
/// region; phases with an analytic model — the APSP store + engine
/// scratch, the scheme's charged table bytes — are reconciled against the
/// measured figures and the profile *refuses* when `measured < claimed`
/// (the analytic model overstates what the code allocates: the claim is
/// broken) or `measured > claimed × slack + abs` (the code allocates more
/// than the model admits: a leak or an unaccounted buffer).
///
/// When the allocator is compiled out (`--no-default-features`) the
/// normal profile runs and a note marks the audit as skipped.
///
/// # Errors
///
/// As [`run_profile`], plus a message naming the first phase whose
/// measured memory does not reconcile with its claim.
pub fn run_profile_mem(scheme_name: &str, n: usize, seed: u64) -> Result<ProfileReport, String> {
    use ort_telemetry::alloc;

    let id = SchemeId::from_name(scheme_name)
        .ok_or_else(|| format!("unknown scheme '{scheme_name}'; try `ort schemes`"))?;
    if !alloc::installed() {
        let mut report = run_profile(scheme_name, n, seed)?;
        report.text.push_str(
            "\nmemory audit: allocator instrumentation compiled out \
             (--no-default-features); measured/claimed reconciliation skipped\n",
        );
        return Ok(report);
    }

    ort_telemetry::reset();
    let mut phases: Vec<MemPhase> = Vec::new();
    let (scheme, verify_report, breakdown) = {
        let _profile = ort_telemetry::span_with(
            "profile",
            &[
                ("scheme", FieldValue::Str(id.name())),
                ("n", FieldValue::Int(n as u64)),
                ("seed", FieldValue::Int(seed)),
                ("mem", FieldValue::Int(1)),
            ],
        );
        let region = alloc::mem_span("profile.graph");
        let g = {
            let _s = ort_telemetry::span("profile.graph");
            generators::gnp_half(n, seed)
        };
        let rec = region.finish();
        phases.push(MemPhase {
            phase: "graph",
            claimed: None,
            audited: rec.region_peak_bytes,
            cap: 0,
            peak: rec.region_peak_bytes,
            net: rec.net_bytes,
        });

        // Serial APSP: the one phase whose analytic claim (store at the
        // compact width + the resolved engine's scratch) is a guaranteed
        // lower bound on what the allocator must observe.
        let region = alloc::mem_span("profile.apsp");
        let apsp = {
            let _s = ort_telemetry::span("profile.apsp");
            Apsp::compute_serial(&g)
        };
        let rec = region.finish();
        let apsp_claim = (apsp.heap_bytes() + ApspEngine::Auto.scratch_bytes(&g, n)) as u64;
        phases.push(MemPhase {
            phase: "apsp.compute",
            claimed: Some(apsp_claim),
            audited: rec.region_peak_bytes,
            cap: (apsp_claim as f64 * MEM_SLACK_APSP) as u64 + MEM_ABS_SLACK,
            peak: rec.region_peak_bytes,
            net: rec.net_bytes,
        });

        // Build over the already-materialised distances — the same
        // tables as `id.build` (the builder-bands harness proves byte
        // identity), with the APSP cost attributed to its own phase
        // above instead of hiding inside the build.
        let region = alloc::mem_span("profile.build");
        let scheme = {
            let _s = ort_telemetry::span("profile.build");
            id.build_with_dists(&g, &apsp)
                .map_err(|e| format!("{scheme_name} refused G({n}, 1/2) seed {seed}: {e}"))?
        };
        let rec = region.finish();
        let table_claim = (scheme.total_size_bits().div_ceil(8)) as u64;
        phases.push(MemPhase {
            phase: "build",
            claimed: Some(table_claim),
            audited: rec.net_bytes.max(0) as u64,
            cap: (table_claim as f64 * MEM_SLACK_BUILD) as u64
                + MEM_BUILD_EDGE_OVERHEAD * g.edge_count() as u64
                + MEM_ABS_SLACK,
            peak: rec.region_peak_bytes,
            net: rec.net_bytes,
        });
        drop(apsp);

        let region = alloc::mem_span("profile.verify");
        let verify_report = {
            let _s = ort_telemetry::span("profile.verify");
            verify::verify_scheme_sampled(&g, scheme.as_ref(), if n >= 256 { 7 } else { 1 })
                .map_err(|e| e.to_string())?
        };
        let rec = region.finish();
        phases.push(MemPhase {
            phase: "verify",
            claimed: None,
            audited: rec.region_peak_bytes,
            cap: 0,
            peak: rec.region_peak_bytes,
            net: rec.net_bytes,
        });

        let region = alloc::mem_span("profile.accounting");
        let breakdown = {
            let _s = ort_telemetry::span("profile.accounting");
            BitBreakdown::of(scheme.as_ref())
        };
        let rec = region.finish();
        phases.push(MemPhase {
            phase: "accounting",
            claimed: None,
            audited: rec.region_peak_bytes,
            cap: 0,
            peak: rec.region_peak_bytes,
            net: rec.net_bytes,
        });
        (scheme, verify_report, breakdown)
    };
    let snap = ort_telemetry::snapshot();

    if breakdown.total() != scheme.total_size_bits() {
        return Err(format!(
            "bit breakdown does not reconcile: {} != total_size_bits() {}",
            breakdown.total(),
            scheme.total_size_bits()
        ));
    }

    let mut text = String::new();
    text.push_str(&format!(
        "== ort profile --mem: {} on G({n}, 1/2) seed {seed} [model {}] ==\n\n",
        id.name(),
        scheme.model()
    ));
    text.push_str("memory audit (instrumented allocator, serial run):\n");
    text.push_str(&format!(
        "  {:<14} {:>12} {:>14} {:>14}  {}\n",
        "phase", "claimed B", "peak B", "net B", "status"
    ));
    let mut violations = Vec::new();
    for p in &phases {
        let status = match p.claimed {
            None => "-".to_string(),
            Some(claimed) => {
                let cap = p.cap;
                if p.audited < claimed {
                    violations.push(format!(
                        "{}: measured {} B under the analytic claim {} B — \
                         the claim overstates what the code allocates",
                        p.phase, p.audited, claimed
                    ));
                    "FAIL (under claim)".to_string()
                } else if p.audited > cap {
                    violations.push(format!(
                        "{}: measured {} B exceeds the analytic claim {} B beyond \
                         slack (cap {} B) — unaccounted allocation",
                        p.phase, p.audited, claimed, cap
                    ));
                    "FAIL (over cap)".to_string()
                } else {
                    format!("OK ({:.2}x)", p.audited as f64 / claimed.max(1) as f64)
                }
            }
        };
        text.push_str(&format!(
            "  {:<14} {:>12} {:>14} {:>14}  {}\n",
            p.phase,
            p.claimed.map_or("-".to_string(), |c| c.to_string()),
            p.peak,
            p.net,
            status
        ));
    }
    text.push_str(&format!(
        "  process: live {} B, peak {} B, {} allocations\n",
        alloc::live_bytes(),
        alloc::peak_bytes(),
        alloc::total_allocations()
    ));

    text.push_str(&format!(
        "\nverification: {} pairs, {} failures, max stretch {:?}\n",
        verify_report.delivered,
        verify_report.failures.len(),
        verify_report.max_stretch()
    ));
    let distinct_phases = snap.span_paths().len();
    text.push_str(&format!("distinct phases recorded: {distinct_phases}\n"));

    if let Some(v) = violations.first() {
        return Err(format!("memory audit failed: {v}"));
    }
    text.push_str("memory audit: PASS (every claimed phase reconciles)\n");

    Ok(ProfileReport { text, distinct_phases, bits_total: breakdown.total() })
}
