//! `ort profile` — one fully instrumented run of a single scheme.
//!
//! The run is the CLI's observability showcase: it resets the telemetry
//! registry, executes graph generation → scheme construction → delivery
//! verification → bit accounting under nested spans, and renders
//!
//! * the aggregated **span tree** (every construction phase with call
//!   counts and wall-clock nanoseconds),
//! * the **counter table** (frontier expansions, oracle reuse, …),
//! * the **per-node bit breakdown** — routing-function bits vs
//!   port-permutation bits vs label bits, which reconcile *exactly* with
//!   [`total_size_bits`]; any mismatch is an encoder bug and the profile
//!   refuses to print.
//!
//! [`total_size_bits`]: ort_routing::scheme::RoutingScheme::total_size_bits
//!
//! The same rendered report is returned as a string so tests can assert
//! on its shape without capturing stdout.

use ort_conformance::registry::SchemeId;
use ort_graphs::generators;
use ort_routing::accounting::BitBreakdown;
use ort_routing::verify;
use ort_telemetry::FieldValue;

/// The rendered profile plus the headline numbers tests assert on.
#[derive(Debug)]
pub struct ProfileReport {
    /// The human-readable report (span tree, counters, bit table).
    pub text: String,
    /// Distinct span paths recorded during the run.
    pub distinct_phases: usize,
    /// The scheme's total charged bits — equals the bit table's total row.
    pub bits_total: usize,
}

/// Runs `scheme_name` on `G(n, 1/2)` with `seed` under full
/// instrumentation and renders the profile.
///
/// # Errors
///
/// Returns a message if the scheme name is unknown, the scheme refuses
/// the graph, verification fails to run, or the bit breakdown does not
/// reconcile with the scheme's charged total.
pub fn run_profile(scheme_name: &str, n: usize, seed: u64) -> Result<ProfileReport, String> {
    let id = SchemeId::from_name(scheme_name)
        .ok_or_else(|| format!("unknown scheme '{scheme_name}'; try `ort schemes`"))?;

    ort_telemetry::reset();
    let (scheme, verify_report, breakdown) = {
        let _profile = ort_telemetry::span_with(
            "profile",
            &[
                ("scheme", FieldValue::Str(id.name())),
                ("n", FieldValue::Int(n as u64)),
                ("seed", FieldValue::Int(seed)),
            ],
        );
        let g = {
            let _s = ort_telemetry::span("profile.graph");
            generators::gnp_half(n, seed)
        };
        let scheme = {
            let _s = ort_telemetry::span("profile.build");
            id.build(&g)
                .map_err(|e| format!("{scheme_name} refused G({n}, 1/2) seed {seed}: {e}"))?
        };
        let verify_report = {
            let _s = ort_telemetry::span("profile.verify");
            verify::verify_scheme_sampled(&g, scheme.as_ref(), if n >= 256 { 7 } else { 1 })
                .map_err(|e| e.to_string())?
        };
        let breakdown = {
            let _s = ort_telemetry::span("profile.accounting");
            BitBreakdown::of(scheme.as_ref())
        };
        (scheme, verify_report, breakdown)
    };
    let snap = ort_telemetry::snapshot();

    if breakdown.total() != scheme.total_size_bits() {
        return Err(format!(
            "bit breakdown does not reconcile: {} != total_size_bits() {}",
            breakdown.total(),
            scheme.total_size_bits()
        ));
    }

    let mut text = String::new();
    text.push_str(&format!(
        "== ort profile: {} on G({n}, 1/2) seed {seed} [model {}] ==\n\n",
        id.name(),
        scheme.model()
    ));
    if ort_telemetry::enabled() {
        text.push_str(&snap.summary_tree());
    } else {
        text.push_str(
            "telemetry is compiled out (built without the `telemetry` feature); \
             span tree and counters are empty\n",
        );
    }

    text.push_str("\nbit accounting (per node, bits):\n");
    text.push_str(&format!(
        "  {:>5} {:>12} {:>10} {:>8} {:>12}\n",
        "node", "routing", "port-perm", "label", "total"
    ));
    for (u, b) in breakdown.nodes.iter().enumerate() {
        text.push_str(&format!(
            "  {:>5} {:>12} {:>10} {:>8} {:>12}\n",
            u,
            b.routing,
            b.port_permutation,
            b.label,
            b.total()
        ));
    }
    text.push_str(&format!(
        "  {:>5} {:>12} {:>10} {:>8} {:>12}\n",
        "total",
        breakdown.routing_bits(),
        breakdown.port_permutation_bits(),
        breakdown.label_bits(),
        breakdown.total()
    ));
    text.push_str(&format!(
        "  table size: {} bits (breakdown reconciles exactly); max node: {} bits\n",
        scheme.total_size_bits(),
        breakdown.max_node_bits()
    ));

    text.push_str(&format!(
        "\nverification: {} pairs, {} failures, max stretch {:?}\n",
        verify_report.delivered,
        verify_report.failures.len(),
        verify_report.max_stretch()
    ));

    // Value-domain distributions recorded during the run (hop counts,
    // stretch, per-node bits): exact counts, log-bucketed percentiles.
    let value_hists: Vec<_> = snap.hists.iter().filter(|h| !h.timing).collect();
    if !value_hists.is_empty() {
        text.push_str("\ndistributions (value domains, exact counts):\n");
        for h in value_hists {
            text.push_str(&format!("  {:<28}{}\n", h.name, h.percentile_line()));
        }
    }

    let distinct_phases = snap.span_paths().len();
    text.push_str(&format!("distinct phases recorded: {distinct_phases}\n"));

    Ok(ProfileReport { text, distinct_phases, bits_total: breakdown.total() })
}
