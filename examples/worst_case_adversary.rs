//! The Theorem 9 worst case, live: the `G_B` graph of Figure 1, an
//! adversarial labelling, and the permutation being read back out of the
//! routing tables.
//!
//! Run with: `cargo run --example worst_case_adversary`

use optimal_routing_tables::bitio::lehmer;
use optimal_routing_tables::routing::lower_bounds::theorem9;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::full_table::FullTableScheme;
use optimal_routing_tables::routing::verify;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 6;
    println!("== Figure 1: the worst-case graph G_B (k = {k}, n = {}) ==\n", 3 * k);
    println!("  top     t0  t1  …  t{}   (degree 1, labels scrambled!)", k - 1);
    println!("           |   |       |");
    println!("  middle  m0  m1  …  m{}   (each mi — ti, and mi — every bottom)", k - 1);
    println!("           \\   |      /");
    println!("            [ b0 … b{} ]   (bottom: complete bipartite with middle)\n", k - 1);
    println!("unique shortest path bottom→top goes through the matching middle;");
    println!("any other route has length ≥ 4, so stretch < 2 forces the choice.\n");

    let (g, sigma) = theorem9::scrambled_gb(k, 2026);
    println!("adversarial top-layer permutation σ = {sigma:?}");

    // Any stretch < 2 scheme qualifies; the full table has stretch 1.
    let scheme = FullTableScheme::build(&g)?;
    let report = verify::verify_scheme(&g, &scheme)?;
    assert!(report.is_shortest_path());

    println!("\nreading σ back out of each bottom node's routing function:");
    for b in 0..k {
        let extracted = theorem9::extract_top_permutation(&scheme, k, b)?;
        println!("  F(b{b}) ⟹ σ = {extracted:?}");
        assert_eq!(extracted, sigma);
    }

    let perm_bits = lehmer::permutation_code_width(k);
    println!("\neach bottom routing function therefore carries ⌈log₂ {k}!⌉ = {perm_bits} bits");
    println!(
        "measured |F(b)| here: {} bits (full table)",
        scheme.node_size_bits(0)
    );
    println!("\nscaled up, that is the paper's worst-case Ω(n² log n) lower bound");
    println!("for every scheme with stretch < 2 when nodes cannot be relabelled.");
    Ok(())
}
