//! Topology zoo: which routing scheme fits which network?
//!
//! The paper's theorems target dense random networks. Real topologies —
//! switch fabrics, small-world overlays, preferential-attachment
//! internets — may or may not satisfy the preconditions. This example runs
//! the randomness certificate on each topology, picks the best applicable
//! scheme, and prints the decision a deployment tool would make.
//!
//! Run with: `cargo run --release --example topology_zoo`

use optimal_routing_tables::graphs::random_props::RandomnessReport;
use optimal_routing_tables::graphs::{generators, graph6, Graph};
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::{
    landmark::LandmarkScheme, multi_interval::MultiIntervalScheme, theorem1::Theorem1Scheme,
};
use optimal_routing_tables::routing::verify;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    let n = 96;
    let zoo: Vec<(&str, Graph)> = vec![
        ("uniform random G(n,1/2)", generators::gnp_half(n, 0)),
        ("random 4-regular fabric", generators::random_regular(n, 4, &mut rng)),
        ("small world (WS k=6 β=.2)", generators::watts_strogatz(n, 6, 0.2, &mut rng)),
        ("preferential attachment (BA m=3)", generators::barabasi_albert(n, 3, &mut rng)),
        ("8×12 grid", generators::grid(8, 12)),
    ];

    println!("== topology zoo: scheme selection by randomness certificate ==\n");
    for (name, g) in &zoo {
        let report = RandomnessReport::evaluate(g, 3.0);
        println!("{name} (n={}, m={}):", g.node_count(), g.edge_count());
        println!(
            "  certificate: degree {} | diameter-2 {} | log-prefix {}",
            report.degree.holds, report.diameter_two, report.cover.holds
        );
        // Interchange check: every topology round-trips through graph6.
        let g6 = graph6::to_graph6(g)?;
        assert_eq!(&graph6::from_graph6(&g6)?, g);

        if report.all_hold() {
            let scheme = Theorem1Scheme::build(g)?;
            let v = verify::verify_scheme(g, &scheme)?;
            assert!(v.is_shortest_path());
            println!(
                "  → Theorem 1 applies: {} bits total, shortest path",
                scheme.total_size_bits()
            );
        } else {
            // General-graph fallbacks.
            let landmark = LandmarkScheme::build(g, 1)?;
            let vl = verify::verify_scheme(g, &landmark)?;
            let multi = MultiIntervalScheme::build(g)?;
            let vm = verify::verify_scheme(g, &multi)?;
            assert!(vl.all_delivered() && vm.all_delivered());
            println!(
                "  → fallbacks: landmark {} bits (stretch ≤ {:.2}) | k-interval {} bits (stretch 1)",
                landmark.total_size_bits(),
                vl.max_stretch().unwrap_or(1.0),
                multi.total_size_bits()
            );
        }
        println!();
    }
    println!("the certificate is exactly the paper's Lemmas 1–3 — the operational");
    println!("meaning of 'this graph is Kolmogorov random enough for Theorem 1'.");
    Ok(())
}
