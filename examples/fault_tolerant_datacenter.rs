//! Full-information routing under link failures — the scenario Section 1
//! motivates: "These schemes allow alternative, shortest, paths to be
//! taken whenever an outgoing link is down."
//!
//! We model a dense cluster interconnect, kill random links, and compare a
//! single-path compact scheme against the full-information scheme.
//!
//! Run with: `cargo run --release --example fault_tolerant_datacenter`

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::full_information::FullInformationScheme;
use optimal_routing_tables::routing::schemes::theorem1::Theorem1Scheme;
use optimal_routing_tables::simnet::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 96;
    let g = generators::gnp_half(n, 42);
    println!("== fault-tolerant routing in a {n}-node dense interconnect ==\n");

    let compact = Theorem1Scheme::build(&g)?;
    let full_info = FullInformationScheme::build(&g)?;
    println!("scheme sizes:");
    println!("  Theorem 1 (single path):   {:>10} bits", compact.total_size_bits());
    println!("  full information (Θ(n³)):  {:>10} bits", full_info.total_size_bits());
    println!();

    // Fail a growing set of random links; measure delivery of both schemes.
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut net_compact = Network::new(&compact);
    let mut net_fi = Network::new(&full_info);

    println!(
        "{:>14} {:>22} {:>22}",
        "failed links", "Theorem 1 delivery", "full info delivery"
    );
    for &failures in &[0usize, 50, 150, 400] {
        // (Re)apply the failure set deterministically.
        let mut to_fail = std::collections::HashSet::new();
        let mut local = StdRng::seed_from_u64(failures as u64 * 31 + 7);
        while to_fail.len() < failures {
            let e = edges[local.gen_range(0..edges.len())];
            to_fail.insert(e);
        }
        for net in [&mut net_compact, &mut net_fi] {
            for &(u, v) in &edges {
                net.restore_link(u, v);
            }
            for &(u, v) in &to_fail {
                net.fail_link(u, v);
            }
        }
        let (ok_c, bad_c) = net_compact.send_all_pairs();
        let (ok_f, bad_f) = net_fi.send_all_pairs();
        let pct = |ok: u64, bad: u64| 100.0 * ok as f64 / (ok + bad) as f64;
        println!(
            "{:>14} {:>21.2}% {:>21.2}%",
            failures,
            pct(ok_c, bad_c),
            pct(ok_f, bad_f)
        );
        // Full information never does worse.
        assert!(ok_f >= ok_c, "failover must not lose to single-path");
    }

    println!("\nfull information buys failover shortest paths at Θ(n³) bits —");
    println!("exactly the cost Theorem 10 proves unavoidable.");
    Ok(())
}
