//! A live network under churn — links flap, routers join and leave, and
//! the routing tables keep up by incremental repair instead of rebuild.
//!
//! A `RepairableScheme` pairs a delta-repaired distance oracle with
//! dirty-region table patching: a localized link delta recomputes only
//! the dirty distance rows and splices only the affected table entries,
//! while membership churn rebuilds the scheme against the repaired
//! oracle. Either way the result is byte-identical to a from-scratch
//! build — which this demo checks live, every event.
//!
//! Run with: `cargo run --release --example live_network_churn`

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::routing::repair::RepairableScheme;
use optimal_routing_tables::routing::schemes::full_table::FullTableScheme;
use optimal_routing_tables::routing::snapshot::{self, SchemeKind};
use optimal_routing_tables::simnet::churn::{ChurnConfig, ChurnEvent, ChurnPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 256;
    let g = generators::connected_gnp(n, 0.04, 7);
    println!("== a {n}-node network that refuses to hold still ==\n");

    let mut live = RepairableScheme::full_table(g.clone())?;
    println!(
        "initial full-table scheme: {} bits across {} nodes\n",
        live.scheme().total_size_bits(),
        live.node_count()
    );

    let cfg = ChurnConfig { steps: 16, ..ChurnConfig::default() };
    let plan = ChurnPlan::generate(&g, &cfg, 7);
    for timed in plan.events() {
        let report = match &timed.event {
            ChurnEvent::AddLink(u, v) => live.add_link(*u, *v)?,
            ChurnEvent::RemoveLink(u, v) => live.remove_link(*u, *v)?,
            ChurnEvent::Join { peers } => live.join(peers)?.1,
            ChurnEvent::Leave(u) => live.leave(*u)?,
        };
        let how = if report.scheme_rebuilt {
            "rebuilt".to_string()
        } else {
            format!("patched {} entries", report.entries_patched)
        };
        println!(
            "t={:<2} {:<28} dirty rows {:>3}  ->  {how}",
            timed.at,
            timed.event.to_string(),
            report.dirty_nodes
        );

        // The live scheme must be indistinguishable from one built from
        // scratch on whatever the topology is now.
        let fresh = FullTableScheme::build(live.graph())?;
        assert_eq!(
            snapshot::save(SchemeKind::FullTable, live.scheme())?,
            snapshot::save(SchemeKind::FullTable, &fresh)?,
            "repair diverged from a cold build"
        );
    }

    let stats = live.stats();
    println!(
        "\nsurvived {} events: {} in-place patches, {} rebuilds, {} refused — \
         byte-identical to a cold build after every single one",
        plan.len(),
        stats.patches,
        stats.rebuilds,
        stats.refusals
    );
    Ok(())
}
