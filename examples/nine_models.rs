//! Tour of the paper's nine models: how the same network costs wildly
//! different numbers of bits depending on what nodes know (IA/IB/II) and
//! whether labels may be changed (α/β/γ).
//!
//! Run with: `cargo run --release --example nine_models`

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::graphs::labels::Labeling;
use optimal_routing_tables::graphs::ports::PortAssignment;
use optimal_routing_tables::routing::model::{Knowledge, Model, Relabeling};
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::{
    full_table::FullTableScheme, theorem1::Theorem1Scheme, theorem2::Theorem2Scheme,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // n = 256 sits past the Theorem-1/Theorem-2 crossover: below it the
    // O(n log² n) labelled scheme still loses to Θ(n²) on constants.
    let n = 256;
    let g = generators::gnp_half(n, 13);
    println!("== one network, nine models (n = {n}) ==\n");
    println!("{:<8} {:<34} {:>12} {:>12}", "model", "best implemented scheme", "total bits", "bits/n²");

    let mut rng = StdRng::seed_from_u64(999);
    let print_row = |model: &str, scheme: &str, bits: usize| {
        println!("{:<8} {:<34} {:>12} {:>12.2}", model, scheme, bits, bits as f64 / (n * n) as f64);
    };

    // IA ∧ α: adversarial fixed ports — only the full table works
    // (Theorem 8 proves ~n² log n is forced).
    let ia = FullTableScheme::build_with(
        &g,
        Model::new(Knowledge::PortsFixed, Relabeling::None),
        PortAssignment::adversarial(&g, &mut rng),
        Labeling::identity(n),
    )?;
    print_row("IA∧α", "full table (Θ(n² log n), forced)", ia.total_size_bits());

    // IA ∧ α again, but meeting Theorem 8's constant from above: store the
    // unavoidable permutation (Lehmer-ranked) instead of a naive table.
    let mut rng2 = StdRng::seed_from_u64(999);
    let ia_compact = optimal_routing_tables::routing::schemes::ia_compact::IaCompactScheme::build(
        &g,
        PortAssignment::adversarial(&g, &mut rng2),
    )?;
    print_row("IA∧α", "IA-compact (≈ the Thm 8 floor)", ia_compact.total_size_bits());

    // IB ∧ α: free ports let Theorem 1 store the interconnection vector.
    let ib = Theorem1Scheme::build_ib(&g)?;
    print_row("IB∧α", "Theorem 1 + stored neighbours", ib.total_size_bits());

    // II ∧ α: neighbours known — Theorem 1 proper.
    let ii = Theorem1Scheme::build(&g)?;
    print_row("II∧α", "Theorem 1 (≤ 6n bits/node)", ii.total_size_bits());

    // II ∧ β: permuted labels add nothing for shortest paths (the lower
    // bound is open in the paper; the upper bound is the same scheme).
    print_row("II∧β", "Theorem 1 (β adds nothing here)", ii.total_size_bits());

    // II ∧ γ: free labels collapse the cost to O(n log² n) — the labels
    // themselves are charged.
    let gamma = Theorem2Scheme::build(&g)?;
    print_row("II∧γ", "Theorem 2 (labels carry routing)", gamma.total_size_bits());

    println!();
    println!(
        "charged label bits under γ: {} of {} total",
        gamma.labeling().total_charged_bits(),
        gamma.total_size_bits()
    );
    println!("\npaper's Table 1 orderings to observe:");
    println!("  IA∧α ≫ IB∧α ≈ II∧α ≫ II∧γ");
    assert!(ia.total_size_bits() > ib.total_size_bits());
    assert!(ib.total_size_bits() >= ii.total_size_bits());
    assert!(ii.total_size_bits() > gamma.total_size_bits());
    Ok(())
}
