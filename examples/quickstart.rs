//! Quickstart: build a compact routing scheme for a random network, route
//! some messages, and see the paper's headline numbers.
//!
//! Run with: `cargo run --example quickstart`

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::full_table::FullTableScheme;
use optimal_routing_tables::routing::schemes::theorem1::Theorem1Scheme;
use optimal_routing_tables::routing::verify;
use optimal_routing_tables::simnet::Network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let seed = 2026;
    println!("== Optimal Routing Tables: quickstart ==\n");
    println!("sampling a uniform random network G({n}, 1/2), seed {seed}…");
    let g = generators::gnp_half(n, seed);
    println!("  {} nodes, {} edges\n", g.node_count(), g.edge_count());

    // The trivial routing scheme: a port per destination at every node.
    let full = FullTableScheme::build(&g)?;
    // The paper's Theorem 1 scheme: two tables, ≤ 6n bits per node.
    let compact = Theorem1Scheme::build(&g)?;

    println!("scheme sizes (total bits, the paper's Σ|F(u)| accounting):");
    println!("  full table (O(n² log n)): {:>9}", full.total_size_bits());
    println!("  Theorem 1  (≤ 6n²):       {:>9}", compact.total_size_bits());
    println!(
        "  ratio: {:.2}× smaller\n",
        full.total_size_bits() as f64 / compact.total_size_bits() as f64
    );

    // Both are shortest-path schemes; verify exhaustively.
    let report = verify::verify_scheme(&g, &compact)?;
    println!(
        "verification: {}/{} pairs delivered, max stretch {:?}",
        report.delivered,
        n * (n - 1),
        report.max_stretch()
    );
    assert!(report.is_shortest_path());

    // Route a few messages through the simulator (decoded bits only).
    let mut net = Network::new(&compact);
    for (s, t) in [(0, 127), (3, 64), (100, 1)] {
        let d = net.send(s, t)?;
        println!("  {s} → {t}: path {:?} ({} hops)", d.path, d.hops());
    }
    println!("\nstats: {:?}", net.stats());
    Ok(())
}
