//! The space/stretch trade-off (Theorems 1, 3, 4, 5): how far routing
//! tables shrink when routes may be slightly longer than shortest.
//!
//! Run with: `cargo run --release --example space_stretch_tradeoff`

use optimal_routing_tables::graphs::generators;
use optimal_routing_tables::routing::scheme::RoutingScheme;
use optimal_routing_tables::routing::schemes::{
    theorem1::Theorem1Scheme, theorem3::Theorem3Scheme, theorem4::Theorem4Scheme,
    theorem5::Theorem5Scheme,
};
use optimal_routing_tables::routing::verify;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let g = generators::gnp_half(n, 7);
    println!("== space vs. stretch on G({n}, 1/2) ==\n");
    println!(
        "{:<28} {:>12} {:>10} {:>12}",
        "scheme", "total bits", "max hops", "max stretch"
    );

    let rows: Vec<(&str, Box<dyn RoutingScheme>)> = vec![
        ("Theorem 1 (shortest path)", Box::new(Theorem1Scheme::build(&g)?)),
        ("Theorem 3 (stretch 1.5)", Box::new(Theorem3Scheme::build(&g)?)),
        ("Theorem 4 (stretch 2)", Box::new(Theorem4Scheme::build(&g)?)),
        ("Theorem 5 (stretch O(log n))", Box::new(Theorem5Scheme::build(&g)?)),
    ];

    let mut last_bits = usize::MAX;
    for (name, scheme) in &rows {
        let report = verify::verify_scheme(&g, scheme.as_ref())?;
        assert!(report.all_delivered(), "{name} failed to deliver");
        let max_hops = report.stretches.iter().map(|&(h, _)| h).max().unwrap_or(0);
        let bits = scheme.total_size_bits();
        println!(
            "{:<28} {:>12} {:>10} {:>12.2}",
            name,
            bits,
            max_hops,
            report.max_stretch().unwrap_or(1.0)
        );
        // Each relaxation of the stretch must buy space.
        assert!(bits <= last_bits, "{name} should not cost more than its predecessor");
        last_bits = bits.max(1);
    }

    println!("\nthe paper's prediction: Θ(n²) → O(n log n) → O(n log log n) → O(n) total bits");
    Ok(())
}
